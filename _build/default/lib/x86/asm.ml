(** Two-pass assembler and combinator DSL for writing x86 workloads.

    All control-flow encodings are fixed-length (rel32), so the first
    pass computes a complete layout and the second pass emits bytes with
    every label resolved.  The resulting {!listing} records per-
    instruction metadata (address, length, 32-bit immediate field
    address) that the self-modifying-code workloads use to patch
    instruction bytes at run time, like Doom/Quake-era inner loops. *)

open Insn

type target = Abs of int | Lbl of string

type item =
  | I of Insn.t  (** a complete instruction *)
  | IJcc of Cond.t * target
  | IJmp of target
  | ICall of target
  | IMovLbl of Regs.t * target  (** mov r32, address-of-label *)
  | IPushLbl of target
  | Label of string
  | Raw of string  (** raw bytes *)
  | Dd of int list  (** 32-bit little-endian data words *)
  | DdLbl of target list  (** 32-bit words holding label addresses *)
  | Space of int  (** zero-filled gap *)
  | Align of int  (** pad with NOPs to a multiple *)

type insn_info = {
  addr : int;
  len : int;
  imm32_addr : int option;
      (** absolute address of the instruction's 32-bit immediate field *)
  text : string;
}

type listing = {
  base : int;
  image : Bytes.t;  (** the assembled bytes, starting at [base] *)
  labels : (string * int) list;
  insns : insn_info list;  (** in program order *)
}

let label_addr l name =
  match List.assoc_opt name l.labels with
  | Some a -> a
  | None -> invalid_arg ("Asm: undefined label " ^ name)

(* Length of each item; must not depend on label values. *)
let item_len ~addr = function
  | I insn -> Encode.length insn
  | IJcc _ -> 6
  | IJmp _ | ICall _ | IMovLbl _ | IPushLbl _ -> 5
  | Label _ -> 0
  | Raw s -> String.length s
  | Dd ws -> 4 * List.length ws
  | DdLbl ws -> 4 * List.length ws
  | Space n -> n
  | Align n -> (n - (addr mod n)) mod n

let assemble ~base items =
  (* Pass 1: layout. *)
  let labels = ref [] in
  let addr = ref base in
  List.iter
    (fun it ->
      (match it with
      | Label name ->
          if List.mem_assoc name !labels then
            invalid_arg ("Asm: duplicate label " ^ name)
          else labels := (name, !addr) :: !labels
      | _ -> ());
      addr := !addr + item_len ~addr:!addr it)
    items;
  let total = !addr - base in
  let labels = !labels in
  let resolve = function
    | Abs a -> a
    | Lbl name -> (
        match List.assoc_opt name labels with
        | Some a -> a
        | None -> invalid_arg ("Asm: undefined label " ^ name))
  in
  (* Pass 2: emit. *)
  let image = Bytes.make total '\x00' in
  let insns = ref [] in
  let addr = ref base in
  let put_insn insn =
    let { Encode.bytes; imm32_off } = Encode.encode ~at:!addr insn in
    Bytes.blit bytes 0 image (!addr - base) (Bytes.length bytes);
    insns :=
      {
        addr = !addr;
        len = Bytes.length bytes;
        imm32_addr = Option.map (fun o -> !addr + o) imm32_off;
        text = Insn.to_string insn;
      }
      :: !insns;
    addr := !addr + Bytes.length bytes
  in
  let put_word v =
    Bytes.set_uint8 image (!addr - base) (v land 0xff);
    Bytes.set_uint8 image (!addr - base + 1) ((v lsr 8) land 0xff);
    Bytes.set_uint8 image (!addr - base + 2) ((v lsr 16) land 0xff);
    Bytes.set_uint8 image (!addr - base + 3) ((v lsr 24) land 0xff);
    addr := !addr + 4
  in
  List.iter
    (fun it ->
      match it with
      | I insn -> put_insn insn
      | IJcc (cc, t) -> put_insn (Jcc (cc, resolve t))
      | IJmp t -> put_insn (Jmp (resolve t))
      | ICall t -> put_insn (Call (resolve t))
      | IMovLbl (r, t) -> put_insn (Mov (S32, RM_I (R r, resolve t)))
      | IPushLbl t -> put_insn (Push (PushI (resolve t)))
      | Label _ -> ()
      | Raw s ->
          Bytes.blit_string s 0 image (!addr - base) (String.length s);
          addr := !addr + String.length s
      | Dd ws -> List.iter put_word ws
      | DdLbl ts -> List.iter (fun t -> put_word (resolve t)) ts
      | Space n -> addr := !addr + n
      | Align n ->
          let pad = (n - (!addr mod n)) mod n in
          for i = 0 to pad - 1 do
            Bytes.set image (!addr - base + i) '\x90'
          done;
          addr := !addr + pad)
    items;
  { base; image; labels; insns = List.rev !insns }

(* ------------------------------------------------------------------ *)
(* Combinators                                                         *)
(* ------------------------------------------------------------------ *)

(* Register shorthands, re-exported for workload files. *)
let eax = Regs.eax
let ecx = Regs.ecx
let edx = Regs.edx
let ebx = Regs.ebx
let esp = Regs.esp
let ebp = Regs.ebp
let esi = Regs.esi
let edi = Regs.edi

let label s = Label s
let lbl s = Lbl s

(** Memory operand helpers. *)
let m ?base ?index disp = Insn.mem ?base ?index disp

let mb r = Insn.mem ~base:r 0
let mbd r disp = Insn.mem ~base:r disp
let mbi b i scale = Insn.mem ~base:b ~index:(i, scale) 0
let mbid b i scale disp = Insn.mem ~base:b ~index:(i, scale) disp

(* mov *)
let mov_rr d s = I (Mov (S32, RM_R (R d, s)))
let mov_ri d i = I (Mov (S32, RM_I (R d, i)))
let mov_rm d mem = I (Mov (S32, R_RM (d, M mem)))
let mov_mr mem s = I (Mov (S32, RM_R (M mem, s)))
let mov_mi mem i = I (Mov (S32, RM_I (M mem, i)))
let mov_rl d l = IMovLbl (d, Lbl l)
let mov8_rm d mem = I (Mov (S8, R_RM (d, M mem)))
let mov8_mr mem s = I (Mov (S8, RM_R (M mem, s)))
let mov8_ri d i = I (Mov (S8, RM_I (R d, i)))
let mov8_mi mem i = I (Mov (S8, RM_I (M mem, i)))
let movzx d mem = I (Movx { sign = false; dst = d; src = M mem })
let movzx_r d s = I (Movx { sign = false; dst = d; src = R s })
let movsx d mem = I (Movx { sign = true; dst = d; src = M mem })

(* arithmetic *)
let arith_rr op d s = I (Arith (op, S32, RM_R (R d, s)))
let arith_ri op d i = I (Arith (op, S32, RM_I (R d, i)))
let arith_rm op d mem = I (Arith (op, S32, R_RM (d, M mem)))
let arith_mr op mem s = I (Arith (op, S32, RM_R (M mem, s)))
let arith_mi op mem i = I (Arith (op, S32, RM_I (M mem, i)))

let add_rr d s = arith_rr Add d s
let add_ri d i = arith_ri Add d i
let add_rm d mem = arith_rm Add d mem
let add_mr mem s = arith_mr Add mem s
let add_mi mem i = arith_mi Add mem i
let sub_rr d s = arith_rr Sub d s
let sub_ri d i = arith_ri Sub d i
let sub_rm d mem = arith_rm Sub d mem
let and_rr d s = arith_rr And d s
let and_ri d i = arith_ri And d i
let or_rr d s = arith_rr Or d s
let or_ri d i = arith_ri Or d i
let xor_rr d s = arith_rr Xor d s
let xor_ri d i = arith_ri Xor d i
let xor_rm d mem = arith_rm Xor d mem
let adc_rr d s = arith_rr Adc d s
let cmp_rr d s = arith_rr Cmp d s
let cmp_ri d i = arith_ri Cmp d i
let cmp_rm d mem = arith_rm Cmp d mem
let cmp_mi mem i = arith_mi Cmp mem i
let test_rr a bb = I (Test (S32, R a, T_R bb))
let test_ri a i = I (Test (S32, R a, T_I i))

let inc_r r = I (Inc (S32, R r))
let dec_r r = I (Dec (S32, R r))
let inc_m mem = I (Inc (S32, M mem))
let dec_m mem = I (Dec (S32, M mem))
let neg_r r = I (Neg (S32, R r))
let not_r r = I (Not (S32, R r))

let shl_ri r i = I (Shift (Shl, S32, R r, Cimm i))
let shr_ri r i = I (Shift (Shr, S32, R r, Cimm i))
let sar_ri r i = I (Shift (Sar, S32, R r, Cimm i))
let rol_ri r i = I (Shift (Rol, S32, R r, Cimm i))
let ror_ri r i = I (Shift (Ror, S32, R r, Cimm i))
let shl_cl r = I (Shift (Shl, S32, R r, Ccl))
let shr_cl r = I (Shift (Shr, S32, R r, Ccl))

let imul_rr d s = I (Imul2 (d, R s))
let imul_rm d mem = I (Imul2 (d, M mem))
let mul_r r = I (Mul (S32, R r))
let div_r r = I (Div (S32, R r))
let idiv_r r = I (Idiv (S32, R r))
let cdq = I Cdq
let lea d mem = I (Lea (d, mem))
let xchg_rr a bb = I (Xchg (S32, R a, bb))

(* stack *)
let push_r r = I (Push (PushR r))
let push_i i = I (Push (PushI i))
let push_l l = IPushLbl (Lbl l)
let pop_r r = I (Pop (R r))
let pushf = I Pushf
let popf = I Popf

(* control flow *)
let jmp l = IJmp (Lbl l)
let jmp_abs a = IJmp (Abs a)
let jmp_r r = I (JmpInd (R r))
let jmp_m mem = I (JmpInd (M mem))
let jcc cc l = IJcc (cc, Lbl l)
let je l = jcc Cond.E l
let jne l = jcc Cond.NE l
let jb l = jcc Cond.B l
let jae l = jcc Cond.AE l
let jbe l = jcc Cond.BE l
let ja l = jcc Cond.A l
let jl l = jcc Cond.L l
let jge l = jcc Cond.GE l
let jle l = jcc Cond.LE l
let jg l = jcc Cond.G l
let js l = jcc Cond.S l
let jns l = jcc Cond.NS l
let jo l = jcc Cond.O l
let call l = ICall (Lbl l)
let call_r r = I (CallInd (R r))
let ret = I (Ret 0)
let retn n = I (Ret n)
let setcc cc r = I (Setcc (cc, R r))

(* system *)
let int_ v = I (Int v)
let int3 = I Int3
let iret = I Iret
let in8 p = I (In (S8, PortImm p))
let in32 p = I (In (S32, PortImm p))
let in32_dx = I (In (S32, PortDx))
let out8 p = I (Out (S8, PortImm p))
let out32 p = I (Out (S32, PortImm p))
let out32_dx = I (Out (S32, PortDx))
let hlt = I Hlt
let nop = I Nop
let cli = I Cli
let sti = I Sti
let lidt mem = I (Lidt mem)

(* string ops *)
let rep_movsd = I (Strop { rep = true; op = Movs; size = S32 })
let rep_movsb = I (Strop { rep = true; op = Movs; size = S8 })
let rep_stosd = I (Strop { rep = true; op = Stos; size = S32 })
let rep_stosb = I (Strop { rep = true; op = Stos; size = S8 })
let movsd_ = I (Strop { rep = false; op = Movs; size = S32 })
let stosd_ = I (Strop { rep = false; op = Stos; size = S32 })

(* data *)
let dd ws = Dd ws
let dd_l ls = DdLbl (List.map (fun s -> Lbl s) ls)
let raw s = Raw s
let space n = Space n
let align n = Align n
