(** x86 condition codes (the [tttn] field of Jcc/SETcc encodings). *)

type t =
  | O   (* overflow *)
  | NO
  | B   (* below: CF *)
  | AE
  | E   (* equal: ZF *)
  | NE
  | BE  (* below or equal: CF or ZF *)
  | A
  | S   (* sign *)
  | NS
  | P   (* parity even *)
  | NP
  | L   (* less: SF <> OF *)
  | GE
  | LE  (* less or equal: ZF or SF <> OF *)
  | G

let all = [ O; NO; B; AE; E; NE; BE; A; S; NS; P; NP; L; GE; LE; G ]

(** Hardware encoding, 0x0..0xF, used as the low nibble of 0x70+cc and
    0x0F 0x80+cc. *)
let to_code = function
  | O -> 0x0
  | NO -> 0x1
  | B -> 0x2
  | AE -> 0x3
  | E -> 0x4
  | NE -> 0x5
  | BE -> 0x6
  | A -> 0x7
  | S -> 0x8
  | NS -> 0x9
  | P -> 0xA
  | NP -> 0xB
  | L -> 0xC
  | GE -> 0xD
  | LE -> 0xE
  | G -> 0xF

let of_code = function
  | 0x0 -> O
  | 0x1 -> NO
  | 0x2 -> B
  | 0x3 -> AE
  | 0x4 -> E
  | 0x5 -> NE
  | 0x6 -> BE
  | 0x7 -> A
  | 0x8 -> S
  | 0x9 -> NS
  | 0xA -> P
  | 0xB -> NP
  | 0xC -> L
  | 0xD -> GE
  | 0xE -> LE
  | 0xF -> G
  | c -> invalid_arg (Printf.sprintf "Cond.of_code %d" c)

(** The opposite condition: [eval (negate c) f = not (eval c f)]. *)
let negate c = of_code (to_code c lxor 1)

let name = function
  | O -> "o"
  | NO -> "no"
  | B -> "b"
  | AE -> "ae"
  | E -> "e"
  | NE -> "ne"
  | BE -> "be"
  | A -> "a"
  | S -> "s"
  | NS -> "ns"
  | P -> "p"
  | NP -> "np"
  | L -> "l"
  | GE -> "ge"
  | LE -> "le"
  | G -> "g"

let pp fmt c = Fmt.string fmt (name c)
