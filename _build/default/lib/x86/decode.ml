(** Binary decoder for the IA-32 subset.

    Consumes genuine IA-32 encodings (ModRM/SIB, disp8/disp32, rel8/rel32,
    the 0x0F escape map, immediate groups 1/2/3/5).  Anything outside the
    subset raises [Exn.Fault UD], like hardware.  The supplied [fetch]
    function may itself raise (e.g. a page fault during instruction
    fetch); the decoder never catches it. *)

open Insn

type fetched = {
  insn : Insn.t;
  len : int;  (** total instruction length in bytes *)
  imm32_off : int option;
      (** byte offset (from instruction start) of a 32-bit *data*
          immediate, if the instruction has one.  Branch displacements do
          not count.  Used by the stylized-SMC translation technique. *)
}

type cursor = { fetch : int -> int; start : int; mutable pos : int }

let byte c =
  let b = c.fetch c.pos land 0xff in
  c.pos <- c.pos + 1;
  b

let imm8 c = byte c

let imm8_s c =
  let b = byte c in
  if b >= 0x80 then b - 0x100 else b

let imm16 c =
  let a = byte c in
  let b = byte c in
  a lor (b lsl 8)

let imm32 c =
  let a = byte c in
  let b = byte c in
  let d = byte c in
  let e = byte c in
  a lor (b lsl 8) lor (d lsl 16) lor (e lsl 24)

let imm32_s c =
  let v = imm32 c in
  if v land 0x80000000 <> 0 then v - 0x100000000 else v

let ud () = raise (Exn.Fault Exn.UD)

(* ------------------------------------------------------------------ *)
(* ModRM / SIB                                                         *)
(* ------------------------------------------------------------------ *)

(** Decode a ModRM byte (and a trailing SIB/displacement if present),
    returning the [reg] field and the r/m operand. *)
let modrm c =
  let m = byte c in
  let md = m lsr 6 and reg = (m lsr 3) land 7 and rm = m land 7 in
  if md = 3 then (reg, R rm)
  else
    let base, index =
      if rm = 4 then begin
        (* SIB byte *)
        let sib = byte c in
        let scale = 1 lsl (sib lsr 6)
        and idx = (sib lsr 3) land 7
        and b = sib land 7 in
        let index = if idx = 4 then None else Some (idx, scale) in
        if b = 5 && md = 0 then (None, index) (* disp32 follows *)
        else (Some b, index)
      end
      else if rm = 5 && md = 0 then (None, None) (* disp32, no base *)
      else (Some rm, None)
    in
    let disp =
      match md with
      | 0 -> (
          match (base, rm) with
          | None, _ -> imm32 c (* [disp32] or SIB with no base *)
          | Some _, _ -> 0)
      | 1 -> imm8_s c
      | 2 -> imm32_s c
      | _ -> assert false
    in
    (reg, M (Insn.mem ?base ?index disp))

let modrm_mem c =
  match modrm c with
  | reg, M m -> (reg, m)
  | _, R _ -> ud ()

(* ------------------------------------------------------------------ *)
(* Groups                                                              *)
(* ------------------------------------------------------------------ *)

(* 0x80/0x81/0x83: arithmetic with immediate. *)
let grp1 c sz ~imm_kind =
  let digit, rm = modrm c in
  let op = arith_of_digit digit in
  let ioff = if imm_kind = `I32 then Some (c.pos - c.start) else None in
  let i =
    match imm_kind with
    | `I8 -> imm8 c
    | `I8s -> imm8_s c land 0xffffffff
    | `I32 -> imm32 c
  in
  (Arith (op, sz, RM_I (rm, i)), ioff)

(* Shift group 2. *)
let grp2 c sz count =
  let digit, rm = modrm c in
  let op =
    match digit with
    | 0 -> Rol
    | 1 -> Ror
    | 4 -> Shl
    | 5 -> Shr
    | 7 -> Sar
    | _ -> ud ()
  in
  let count = match count with `One -> C1 | `Cl -> Ccl | `Imm -> Cimm (imm8 c) in
  Shift (op, sz, rm, count)

(* Unary group 3 (F6/F7). *)
let grp3 c sz =
  let digit, rm = modrm c in
  match digit with
  | 0 ->
      let ioff = if sz = S32 then Some (c.pos - c.start) else None in
      let i = match sz with S8 -> imm8 c | S32 -> imm32 c in
      (Test (sz, rm, T_I i), ioff)
  | 2 -> (Not (sz, rm), None)
  | 3 -> (Neg (sz, rm), None)
  | 4 -> (Mul (sz, rm), None)
  | 5 -> (Imul1 (sz, rm), None)
  | 6 -> (Div (sz, rm), None)
  | 7 -> (Idiv (sz, rm), None)
  | _ -> ud ()

(* ------------------------------------------------------------------ *)
(* Main dispatch                                                       *)
(* ------------------------------------------------------------------ *)

let decode_0f c =
  let op = byte c in
  match op with
  | 0x01 -> (
      (* Only /3 = LIDT in the subset. *)
      match modrm_mem c with 3, m -> Lidt m | _ -> ud ())
  | _ when op >= 0x80 && op <= 0x8f ->
      let cc = Cond.of_code (op land 0xf) in
      let rel = imm32_s c in
      Jcc (cc, (c.pos + rel) land 0xffffffff)
  | _ when op >= 0x90 && op <= 0x9f ->
      let cc = Cond.of_code (op land 0xf) in
      let _, rm = modrm c in
      Setcc (cc, rm)
  | 0xaf ->
      let reg, rm = modrm c in
      Imul2 (reg, rm)
  | 0xb6 ->
      let reg, rm = modrm c in
      Movx { sign = false; dst = reg; src = rm }
  | 0xbe ->
      let reg, rm = modrm c in
      Movx { sign = true; dst = reg; src = rm }
  | _ -> ud ()

let decode_one c =
  let op = byte c in
  (* The eight classic ALU rows: 00-05, 08-0d, ... 38-3d. *)
  if op < 0x40 && op land 7 < 6 && op <> 0x0f then begin
    let a = arith_of_digit (op lsr 3) in
    match op land 7 with
    | 0 ->
        let reg, rm = modrm c in
        (Arith (a, S8, RM_R (rm, reg)), None)
    | 1 ->
        let reg, rm = modrm c in
        (Arith (a, S32, RM_R (rm, reg)), None)
    | 2 ->
        let reg, rm = modrm c in
        (Arith (a, S8, R_RM (reg, rm)), None)
    | 3 ->
        let reg, rm = modrm c in
        (Arith (a, S32, R_RM (reg, rm)), None)
    | 4 -> (Arith (a, S8, RM_I (R Regs.eax, imm8 c)), None)
    | 5 ->
        let off = c.pos - c.start in
        (Arith (a, S32, RM_I (R Regs.eax, imm32 c)), Some off)
    | _ -> assert false
  end
  else
    match op with
    | 0x0f -> (decode_0f c, None)
    | _ when op >= 0x40 && op <= 0x47 -> (Inc (S32, R (op land 7)), None)
    | _ when op >= 0x48 && op <= 0x4f -> (Dec (S32, R (op land 7)), None)
    | _ when op >= 0x50 && op <= 0x57 -> (Push (PushR (op land 7)), None)
    | _ when op >= 0x58 && op <= 0x5f -> (Pop (R (op land 7)), None)
    | 0x68 ->
        let off = c.pos - c.start in
        (Push (PushI (imm32 c)), Some off)
    | 0x6a -> (Push (PushI (imm8_s c land 0xffffffff)), None)
    | _ when op >= 0x70 && op <= 0x7f ->
        let cc = Cond.of_code (op land 0xf) in
        let rel = imm8_s c in
        (Jcc (cc, (c.pos + rel) land 0xffffffff), None)
    | 0x80 -> grp1 c S8 ~imm_kind:`I8
    | 0x81 -> grp1 c S32 ~imm_kind:`I32
    | 0x83 -> grp1 c S32 ~imm_kind:`I8s
    | 0x84 ->
        let reg, rm = modrm c in
        (Test (S8, rm, T_R reg), None)
    | 0x85 ->
        let reg, rm = modrm c in
        (Test (S32, rm, T_R reg), None)
    | 0x86 ->
        let reg, rm = modrm c in
        (Xchg (S8, rm, reg), None)
    | 0x87 ->
        let reg, rm = modrm c in
        (Xchg (S32, rm, reg), None)
    | 0x88 ->
        let reg, rm = modrm c in
        (Mov (S8, RM_R (rm, reg)), None)
    | 0x89 ->
        let reg, rm = modrm c in
        (Mov (S32, RM_R (rm, reg)), None)
    | 0x8a ->
        let reg, rm = modrm c in
        (Mov (S8, R_RM (reg, rm)), None)
    | 0x8b ->
        let reg, rm = modrm c in
        (Mov (S32, R_RM (reg, rm)), None)
    | 0x8d ->
        let reg, m = modrm_mem c in
        (Lea (reg, m), None)
    | 0x8f -> (
        match modrm c with 0, rm -> (Pop rm, None) | _ -> ud ())
    | 0x90 -> (Nop, None)
    | 0x99 -> (Cdq, None)
    | 0x9c -> (Pushf, None)
    | 0x9d -> (Popf, None)
    | 0xa4 -> (Strop { rep = false; op = Movs; size = S8 }, None)
    | 0xa5 -> (Strop { rep = false; op = Movs; size = S32 }, None)
    | 0xa8 -> (Test (S8, R Regs.eax, T_I (imm8 c)), None)
    | 0xa9 ->
        let off = c.pos - c.start in
        (Test (S32, R Regs.eax, T_I (imm32 c)), Some off)
    | 0xaa -> (Strop { rep = false; op = Stos; size = S8 }, None)
    | 0xab -> (Strop { rep = false; op = Stos; size = S32 }, None)
    | _ when op >= 0xb0 && op <= 0xb7 ->
        (Mov (S8, RM_I (R (op land 7), imm8 c)), None)
    | _ when op >= 0xb8 && op <= 0xbf ->
        let off = c.pos - c.start in
        (Mov (S32, RM_I (R (op land 7), imm32 c)), Some off)
    | 0xc0 -> (grp2 c S8 `Imm, None)
    | 0xc1 -> (grp2 c S32 `Imm, None)
    | 0xc2 -> (Ret (imm16 c), None)
    | 0xc3 -> (Ret 0, None)
    | 0xc6 -> (
        match modrm c with
        | 0, rm -> (Mov (S8, RM_I (rm, imm8 c)), None)
        | _ -> ud ())
    | 0xc7 -> (
        match modrm c with
        | 0, rm ->
            let off = c.pos - c.start in
            (Mov (S32, RM_I (rm, imm32 c)), Some off)
        | _ -> ud ())
    | 0xcc -> (Int3, None)
    | 0xcd -> (Int (imm8 c), None)
    | 0xcf -> (Iret, None)
    | 0xd0 -> (grp2 c S8 `One, None)
    | 0xd1 -> (grp2 c S32 `One, None)
    | 0xd2 -> (grp2 c S8 `Cl, None)
    | 0xd3 -> (grp2 c S32 `Cl, None)
    | 0xe4 -> (In (S8, PortImm (imm8 c)), None)
    | 0xe5 -> (In (S32, PortImm (imm8 c)), None)
    | 0xe6 -> (Out (S8, PortImm (imm8 c)), None)
    | 0xe7 -> (Out (S32, PortImm (imm8 c)), None)
    | 0xe8 ->
        let rel = imm32_s c in
        (Call ((c.pos + rel) land 0xffffffff), None)
    | 0xe9 ->
        let rel = imm32_s c in
        (Jmp ((c.pos + rel) land 0xffffffff), None)
    | 0xeb ->
        let rel = imm8_s c in
        (Jmp ((c.pos + rel) land 0xffffffff), None)
    | 0xec -> (In (S8, PortDx), None)
    | 0xed -> (In (S32, PortDx), None)
    | 0xee -> (Out (S8, PortDx), None)
    | 0xef -> (Out (S32, PortDx), None)
    | 0xf3 -> (
        (* REP prefix: only string ops in the subset. *)
        match byte c with
        | 0xa4 -> (Strop { rep = true; op = Movs; size = S8 }, None)
        | 0xa5 -> (Strop { rep = true; op = Movs; size = S32 }, None)
        | 0xaa -> (Strop { rep = true; op = Stos; size = S8 }, None)
        | 0xab -> (Strop { rep = true; op = Stos; size = S32 }, None)
        | _ -> ud ())
    | 0xf4 -> (Hlt, None)
    | 0xf6 -> grp3 c S8
    | 0xf7 -> grp3 c S32
    | 0xfa -> (Cli, None)
    | 0xfb -> (Sti, None)
    | 0xfe -> (
        match modrm c with
        | 0, rm -> (Inc (S8, rm), None)
        | 1, rm -> (Dec (S8, rm), None)
        | _ -> ud ())
    | 0xff -> (
        match modrm c with
        | 0, rm -> (Inc (S32, rm), None)
        | 1, rm -> (Dec (S32, rm), None)
        | 2, rm -> (CallInd rm, None)
        | 4, rm -> (JmpInd rm, None)
        | 6, rm -> (
            match rm with
            | M m -> (Push (PushM m), None)
            | R r -> (Push (PushR r), None))
        | _ -> ud ())
    | _ -> ud ()

(** Decode the instruction at [eip].  [fetch a] must return the byte at
    linear address [a]. *)
let decode ~fetch eip =
  let c = { fetch; start = eip; pos = eip } in
  let insn, imm32_off = decode_one c in
  { insn; len = c.pos - c.start; imm32_off }

(** Maximum encoded length of any instruction in the subset (prefix +
    opcode + modrm + sib + disp32 + imm32). *)
let max_len = 12
