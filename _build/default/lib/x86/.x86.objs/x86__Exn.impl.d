lib/x86/exn.ml: Fmt
