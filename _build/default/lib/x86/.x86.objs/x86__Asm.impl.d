lib/x86/asm.ml: Bytes Cond Encode Insn List Option Regs String
