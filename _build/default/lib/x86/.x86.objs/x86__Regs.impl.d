lib/x86/regs.ml: Array Fmt
