lib/x86/cond.ml: Fmt Printf
