lib/x86/flags.ml: Cond Fmt Int64
