lib/x86/insn.ml: Array Cond Flags Fmt Printf Regs String
