lib/x86/decode.ml: Cond Exn Insn Regs
