lib/x86/encode.ml: Buffer Bytes Char Cond Insn List Regs
