(** EFLAGS semantics for the IA-32 subset.

    This module is the single source of truth for x86 arithmetic-flag
    behaviour.  The interpreter, the translator's constant folder, and the
    VLIW host's x86-flavoured ALU atoms all call these functions, so the
    three agree by construction — a property the CMS recovery machinery
    depends on (re-interpreting a rolled-back translation must reproduce
    the exact state the translation would have produced).

    Values are stored as an OCaml [int] using the real EFLAGS bit layout.
    All arithmetic is on 32-bit (or 8-bit) values held in the low bits of
    an OCaml int; results are always masked. *)

type t = int

(* Real IA-32 bit positions. *)
let cf_bit = 0
let pf_bit = 2
let af_bit = 4
let zf_bit = 6
let sf_bit = 7
let if_bit = 9
let of_bit = 11

let cf_mask = 1 lsl cf_bit
let pf_mask = 1 lsl pf_bit
let af_mask = 1 lsl af_bit
let zf_mask = 1 lsl zf_bit
let sf_mask = 1 lsl sf_bit
let if_mask = 1 lsl if_bit
let of_mask = 1 lsl of_bit

(* Bit 1 of EFLAGS is always 1 on real hardware. *)
let reserved = 0x2
let initial = reserved

(* All the bits arithmetic instructions may touch. *)
let status_mask = cf_mask lor pf_mask lor af_mask lor zf_mask lor sf_mask lor of_mask

let cf f = f land cf_mask <> 0
let pf f = f land pf_mask <> 0
let af f = f land af_mask <> 0
let zf f = f land zf_mask <> 0
let sf f = f land sf_mask <> 0
let interrupts_enabled f = f land if_mask <> 0
let of_ f = f land of_mask <> 0

let set_if f b = if b then f lor if_mask else f land lnot if_mask

type size = S8 | S32

let bits = function S8 -> 8 | S32 -> 32
let mask = function S8 -> 0xff | S32 -> 0xffffffff
let sign_mask = function S8 -> 0x80 | S32 -> 0x80000000

(** Sign-extend a [size]-sized value to a signed OCaml int. *)
let sext sz v =
  let v = v land mask sz in
  if v land sign_mask sz <> 0 then v - (mask sz + 1) else v

(** Truncate to size. *)
let trunc sz v = v land mask sz

let parity_even v =
  let v = v land 0xff in
  let v = v lxor (v lsr 4) in
  let v = v lxor (v lsr 2) in
  let v = v lxor (v lsr 1) in
  v land 1 = 0

(* Compose the six status flags; [old] supplies the untouched bits. *)
let compose ~old ~cf ~pf ~af ~zf ~sf ~ovf =
  let f = old land lnot status_mask in
  let f = if cf then f lor cf_mask else f in
  let f = if pf then f lor pf_mask else f in
  let f = if af then f lor af_mask else f in
  let f = if zf then f lor zf_mask else f in
  let f = if sf then f lor sf_mask else f in
  if ovf then f lor of_mask else f

let szp sz r = ((r land mask sz) = 0, r land sign_mask sz <> 0, parity_even r)

(* ------------------------------------------------------------------ *)
(* Addition / subtraction                                              *)
(* ------------------------------------------------------------------ *)

let add_c sz fl a b carry_in =
  let a = trunc sz a and b = trunc sz b in
  let cin = if carry_in then 1 else 0 in
  let full = a + b + cin in
  let r = trunc sz full in
  let carry = full > mask sz in
  let ovf =
    let sa = a land sign_mask sz <> 0
    and sb = b land sign_mask sz <> 0
    and sr = r land sign_mask sz <> 0 in
    sa = sb && sa <> sr
  in
  let auxc = (a land 0xf) + (b land 0xf) + cin > 0xf in
  let zf, sf, pf = szp sz r in
  (r, compose ~old:fl ~cf:carry ~pf ~af:auxc ~zf ~sf ~ovf)

let add sz fl a b = add_c sz fl a b false
let adc sz fl a b = add_c sz fl a b (cf fl)

let sub_b sz fl a b borrow_in =
  let a = trunc sz a and b = trunc sz b in
  let bin = if borrow_in then 1 else 0 in
  let full = a - b - bin in
  let r = trunc sz full in
  let carry = full < 0 in
  let ovf =
    let sa = a land sign_mask sz <> 0
    and sb = b land sign_mask sz <> 0
    and sr = r land sign_mask sz <> 0 in
    sa <> sb && sa <> sr
  in
  let auxc = (a land 0xf) - (b land 0xf) - bin < 0 in
  let zf, sf, pf = szp sz r in
  (r, compose ~old:fl ~cf:carry ~pf ~af:auxc ~zf ~sf ~ovf)

let sub sz fl a b = sub_b sz fl a b false
let sbb sz fl a b = sub_b sz fl a b (cf fl)
let cmp sz fl a b = snd (sub sz fl a b)

(* INC/DEC preserve CF. *)
let inc sz fl a =
  let r, f = add sz fl a 1 in
  (r, (f land lnot cf_mask) lor (fl land cf_mask))

let dec sz fl a =
  let r, f = sub sz fl a 1 in
  (r, (f land lnot cf_mask) lor (fl land cf_mask))

let neg sz fl a =
  let r, f = sub sz fl 0 a in
  (* NEG: CF = (src <> 0). The generic sub already computes that. *)
  (r, f)

(* ------------------------------------------------------------------ *)
(* Logic                                                               *)
(* ------------------------------------------------------------------ *)

let logic sz fl r =
  let r = trunc sz r in
  let zf, sf, pf = szp sz r in
  (r, compose ~old:fl ~cf:false ~pf ~af:false ~zf ~sf ~ovf:false)

let and_ sz fl a b = logic sz fl (a land b)
let or_ sz fl a b = logic sz fl (a lor b)
let xor sz fl a b = logic sz fl (a lxor b)
let test sz fl a b = snd (and_ sz fl a b)

(* ------------------------------------------------------------------ *)
(* Shifts and rotates                                                  *)
(* ------------------------------------------------------------------ *)

(* x86 masks shift counts to 5 bits.  Count 0 leaves flags unchanged.
   OF is architecturally defined only for count 1; we define it by the
   count-1 formula for all counts (documented deviation, consistent
   everywhere in this system). *)

let shl sz fl a count =
  let count = count land 0x1f in
  if count = 0 then (trunc sz a, fl)
  else
    let a = trunc sz a in
    let n = bits sz in
    let carry = count <= n && a land (1 lsl (n - count)) <> 0 in
    let r = trunc sz (a lsl count) in
    let zf, sf, pf = szp sz r in
    let ovf = carry <> (r land sign_mask sz <> 0) in
    (r, compose ~old:fl ~cf:carry ~pf ~af:false ~zf ~sf ~ovf)

let shr sz fl a count =
  let count = count land 0x1f in
  if count = 0 then (trunc sz a, fl)
  else
    let a = trunc sz a in
    let carry = count <= bits sz && a land (1 lsl (count - 1)) <> 0 in
    let r = a lsr count in
    let zf, sf, pf = szp sz r in
    let ovf = a land sign_mask sz <> 0 in
    (r, compose ~old:fl ~cf:carry ~pf ~af:false ~zf ~sf ~ovf)

let sar sz fl a count =
  let count = count land 0x1f in
  if count = 0 then (trunc sz a, fl)
  else
    let a = sext sz a in
    let carry = a asr (count - 1) land 1 <> 0 in
    let r = trunc sz (a asr count) in
    let zf, sf, pf = szp sz r in
    (r, compose ~old:fl ~cf:carry ~pf ~af:false ~zf ~sf ~ovf:false)

let rol sz fl a count =
  let n = bits sz in
  let count = count land 0x1f in
  if count = 0 then (trunc sz a, fl)
  else
    let c = count mod n in
    let a = trunc sz a in
    let r = if c = 0 then a else trunc sz ((a lsl c) lor (a lsr (n - c))) in
    let carry = r land 1 <> 0 in
    let ovf = carry <> (r land sign_mask sz <> 0) in
    let fl = if carry then fl lor cf_mask else fl land lnot cf_mask in
    let fl = if ovf then fl lor of_mask else fl land lnot of_mask in
    (r, fl)

let ror sz fl a count =
  let n = bits sz in
  let count = count land 0x1f in
  if count = 0 then (trunc sz a, fl)
  else
    let c = count mod n in
    let a = trunc sz a in
    let r = if c = 0 then a else trunc sz ((a lsr c) lor (a lsl (n - c))) in
    let msb = r land sign_mask sz <> 0 in
    let msb2 = r land (sign_mask sz lsr 1) <> 0 in
    let fl = if msb then fl lor cf_mask else fl land lnot cf_mask in
    let fl = if msb <> msb2 then fl lor of_mask else fl land lnot of_mask in
    (r, fl)

(* ------------------------------------------------------------------ *)
(* Multiply / divide                                                   *)
(* ------------------------------------------------------------------ *)

(* MUL/IMUL: CF/OF indicate significant upper half.  ZF/SF/PF are
   architecturally undefined; we define them from the low result and set
   AF = 0 (documented, used consistently system-wide). *)

(* 32x32 products and 64/32 divides exceed OCaml's 63-bit [int]; do the
   wide arithmetic in [Int64] and come back to masked ints. *)

let mul sz fl a b =
  let a = trunc sz a and b = trunc sz b in
  let full = Int64.mul (Int64.of_int a) (Int64.of_int b) in
  let lo = Int64.to_int (Int64.logand full 0xffffffffL) land mask sz in
  let hi =
    Int64.to_int (Int64.shift_right_logical full (bits sz)) land mask sz
  in
  let over = hi <> 0 in
  let zf, sf, pf = szp sz lo in
  (lo, hi, compose ~old:fl ~cf:over ~pf ~af:false ~zf ~sf ~ovf:over)

let imul sz fl a b =
  let a = sext sz a and b = sext sz b in
  let full = Int64.mul (Int64.of_int a) (Int64.of_int b) in
  let lo = Int64.to_int (Int64.logand full (Int64.of_int (mask sz))) in
  let hi =
    Int64.to_int (Int64.shift_right full (bits sz)) land mask sz
  in
  let over = full <> Int64.of_int (sext sz lo) in
  let zf, sf, pf = szp sz lo in
  (lo, hi, compose ~old:fl ~cf:over ~pf ~af:false ~zf ~sf ~ovf:over)

(** [div sz hi lo divisor] returns [Some (quot, rem)] or [None] on a #DE
    condition (divide by zero or quotient overflow).  Unsigned. *)
let div sz hi lo divisor =
  let divisor = trunc sz divisor in
  if divisor = 0 then None
  else
    let dividend =
      Int64.logor
        (Int64.shift_left (Int64.of_int (trunc sz hi)) (bits sz))
        (Int64.of_int (trunc sz lo))
    in
    let d = Int64.of_int divisor in
    let q = Int64.unsigned_div dividend d
    and r = Int64.unsigned_rem dividend d in
    if Int64.unsigned_compare q (Int64.of_int (mask sz)) > 0 then None
    else Some (Int64.to_int q, Int64.to_int r)

(** Signed division; dividend is hi:lo two's complement. *)
let idiv sz hi lo divisor =
  let divisor = sext sz divisor in
  if divisor = 0 then None
  else
    let dividend =
      Int64.logor
        (Int64.shift_left (Int64.of_int (sext sz hi)) (bits sz))
        (Int64.of_int (trunc sz lo))
    in
    let d = Int64.of_int divisor in
    (* Int64 division truncates toward zero, same as x86 IDIV. *)
    let q = Int64.div dividend d and r = Int64.rem dividend d in
    if
      Int64.compare q (Int64.of_int (sext sz (sign_mask sz - 1))) > 0
      || Int64.compare q (Int64.of_int (sext sz (sign_mask sz))) < 0
    then None
    else Some (Int64.to_int q land mask sz, Int64.to_int r land mask sz)

(* ------------------------------------------------------------------ *)
(* Condition evaluation                                                *)
(* ------------------------------------------------------------------ *)

let eval_cond (c : Cond.t) f =
  match c with
  | Cond.O -> of_ f
  | NO -> not (of_ f)
  | B -> cf f
  | AE -> not (cf f)
  | E -> zf f
  | NE -> not (zf f)
  | BE -> cf f || zf f
  | A -> not (cf f || zf f)
  | S -> sf f
  | NS -> not (sf f)
  | P -> pf f
  | NP -> not (pf f)
  | L -> sf f <> of_ f
  | GE -> sf f = of_ f
  | LE -> zf f || sf f <> of_ f
  | G -> (not (zf f)) && sf f = of_ f

let pp fmt f =
  Fmt.pf fmt "[%s%s%s%s%s%s%s]"
    (if cf f then "C" else "-")
    (if pf f then "P" else "-")
    (if af f then "A" else "-")
    (if zf f then "Z" else "-")
    (if sf f then "S" else "-")
    (if of_ f then "O" else "-")
    (if interrupts_enabled f then "I" else "-")
