lib/machine/timer.ml: Bus Irq
