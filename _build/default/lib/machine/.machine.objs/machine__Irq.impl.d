lib/machine/irq.ml:
