lib/machine/disk.ml: Bus Bytes Irq
