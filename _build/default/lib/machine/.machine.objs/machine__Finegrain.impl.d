lib/machine/finegrain.ml: Hashtbl Int64 List Mmu
