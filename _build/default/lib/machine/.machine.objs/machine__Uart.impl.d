lib/machine/uart.ml: Buffer Bus Char
