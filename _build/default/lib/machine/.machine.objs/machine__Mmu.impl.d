lib/machine/mmu.ml: Hashtbl X86
