lib/machine/platform.ml: Bus Bytes Disk Framebuf Irq Mem Mmu Timer Uart
