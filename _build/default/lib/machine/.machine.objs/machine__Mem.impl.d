lib/machine/mem.ml: Bus Bytes Char Finegrain Hashtbl Mmu Phys X86
