lib/machine/phys.ml: Bytes Char Int32 String
