lib/machine/bus.ml: Hashtbl List Phys
