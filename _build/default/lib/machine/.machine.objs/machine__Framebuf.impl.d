lib/machine/framebuf.ml: Bus Bytes Char Int32
