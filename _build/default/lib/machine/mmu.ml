(** Paging MMU for the guest's linear address space.

    A single-level software page table maps 4 KiB virtual pages to
    physical pages with present/writable attributes.  Translation
    failures raise the guest-visible [X86.Exn.Fault (PF _)] — precisely
    the fault the CMS interpreter must reproduce at the right
    instruction boundary. *)

let page_shift = 12
let page_size = 1 lsl page_shift
let page_mask = page_size - 1

type entry = { mutable ppn : int; mutable present : bool; mutable writable : bool }

type t = {
  table : (int, entry) Hashtbl.t;  (** vpn -> entry *)
  mutable enabled : bool;
      (** when disabled, virtual = physical (boot-time identity) *)
}

type access = Read | Write | Exec

let create () = { table = Hashtbl.create 256; enabled = true }

let map t ~virt ~phys ~writable =
  let vpn = virt lsr page_shift and ppn = phys lsr page_shift in
  match Hashtbl.find_opt t.table vpn with
  | Some e ->
      e.ppn <- ppn;
      e.present <- true;
      e.writable <- writable
  | None -> Hashtbl.add t.table vpn { ppn; present = true; writable }

(** Identity-map [pages] pages starting at [virt]. *)
let map_identity t ~virt ~pages ~writable =
  for i = 0 to pages - 1 do
    let a = virt + (i lsl page_shift) in
    map t ~virt:a ~phys:a ~writable
  done

let unmap t ~virt =
  match Hashtbl.find_opt t.table (virt lsr page_shift) with
  | Some e -> e.present <- false
  | None -> ()

let set_writable t ~virt w =
  match Hashtbl.find_opt t.table (virt lsr page_shift) with
  | Some e -> e.writable <- w
  | None -> ()

let fault addr access present =
  raise
    (X86.Exn.Fault
       (X86.Exn.PF { addr; write = (access = Write); present }))

(** Translate a linear address; raises #PF on miss or write-protection. *)
let translate t access vaddr =
  let vaddr = vaddr land 0xffffffff in
  if not t.enabled then vaddr
  else
    match Hashtbl.find_opt t.table (vaddr lsr page_shift) with
    | None -> fault vaddr access false
    | Some e ->
        if not e.present then fault vaddr access false
        else if access = Write && not e.writable then fault vaddr access true
        else (e.ppn lsl page_shift) lor (vaddr land page_mask)

(** Translation that reports failure rather than raising; used by the
    translator to probe whether speculation assumptions can be checked. *)
let translate_opt t access vaddr =
  match translate t access vaddr with
  | p -> Some p
  | exception X86.Exn.Fault _ -> None
