(** The guest memory system: MMU + bus + CMS translated-page protection.

    Every guest-visible access funnels through here, from both the
    interpreter and committed translation stores, so self-modifying-code
    detection sees all writes regardless of execution mode.

    Protection is layered (paper §3.6):

    - a physical page can be [protected] because translations were made
      from code on it; a store that hits a protected page raises an
      *SMC event* toward CMS (it is not a guest-visible fault);
    - a protected page may additionally be in *fine-grain mode*: the
      {!Finegrain} hardware cache then filters writes by 64-byte chunk,
      so stores to pure-data chunks proceed without any fault.

    The guest's own #PF (not-present / read-only page) is raised from
    {!Mmu.translate} before protection is even consulted. *)

type smc_hit =
  | Page_level  (** page-granular protection fault *)
  | Fg_miss  (** fine-grain cache miss; software refill needed *)
  | Fg_chunk  (** write overlaps a protected chunk *)

exception Smc_stuck of int
(** raised if an SMC handler fails to make progress (internal bug guard) *)

type t = {
  phys : Phys.t;
  mmu : Mmu.t;
  bus : Bus.t;
  fg : Finegrain.t;
  mutable fg_enabled : bool;  (** fine-grain hardware present (Table 1 knob) *)
  protected_pages : (int, unit) Hashtbl.t;  (** ppn set *)
  fg_pages : (int, unit) Hashtbl.t;  (** ppn set: pages in fine-grain mode *)
  mutable on_smc : smc_hit -> paddr:int -> len:int -> unit;
      (** CMS handler invoked on an SMC event from the ordered write
          path; must update protection state so the write can retry *)
  mutable on_dma_smc : ppn:int -> unit;
      (** CMS handler for DMA touching a protected page *)
  mutable write_pass : bool;
      (** one-shot: the SMC handler performs/authorizes the pending
          write itself; the next protection check is waved through *)
  mutable page_prot_faults : int;  (** page-level SMC faults taken *)
  mutable smc_events : int;  (** all SMC events (any granularity) *)
  mutable dma_smc_events : int;
}

let create ?(ram_size = 16 * 1024 * 1024) ?(fg_capacity = 8) () =
  let phys = Phys.create ram_size in
  {
    phys;
    mmu = Mmu.create ();
    bus = Bus.create phys;
    fg = Finegrain.create ~capacity:fg_capacity ();
    fg_enabled = true;
    protected_pages = Hashtbl.create 64;
    fg_pages = Hashtbl.create 16;
    on_smc = (fun _ ~paddr:_ ~len:_ -> ());
    on_dma_smc = (fun ~ppn:_ -> ());
    write_pass = false;
    page_prot_faults = 0;
    smc_events = 0;
    dma_smc_events = 0;
  }

(* ------------------------------------------------------------------ *)
(* Protection state                                                    *)
(* ------------------------------------------------------------------ *)

let ppn_of paddr = paddr lsr Mmu.page_shift

let protect_page t ~ppn = Hashtbl.replace t.protected_pages ppn ()

let unprotect_page t ~ppn =
  Hashtbl.remove t.protected_pages ppn;
  Hashtbl.remove t.fg_pages ppn;
  Finegrain.invalidate t.fg ~ppn

let is_protected t ~ppn = Hashtbl.mem t.protected_pages ppn

let set_fg_mode t ~ppn on =
  if on && t.fg_enabled then Hashtbl.replace t.fg_pages ppn ()
  else begin
    Hashtbl.remove t.fg_pages ppn;
    Finegrain.invalidate t.fg ~ppn
  end

let in_fg_mode t ~ppn = Hashtbl.mem t.fg_pages ppn

(** Hardware-side protection check for a store to physical [paddr].
    Returns [None] when the store may proceed. *)
let check_store t ~paddr ~len =
  let ppn = ppn_of paddr in
  if t.write_pass then begin
    t.write_pass <- false;
    None
  end
  else if not (Hashtbl.mem t.protected_pages ppn) then None
  else if t.fg_enabled && Hashtbl.mem t.fg_pages ppn then
    match Finegrain.check t.fg ~paddr ~len with
    | Finegrain.Clear -> None
    | Finegrain.Miss -> Some Fg_miss
    | Finegrain.Protected_chunk -> Some Fg_chunk
  else Some Page_level

let note_smc t hit =
  t.smc_events <- t.smc_events + 1;
  if hit = Page_level then t.page_prot_faults <- t.page_prot_faults + 1

(* ------------------------------------------------------------------ *)
(* Guest accessors                                                     *)
(* ------------------------------------------------------------------ *)

let page_room vaddr = Mmu.page_size - (vaddr land Mmu.page_mask)

(** Guest read of [size] in {1,4} bytes at linear [vaddr]. *)
let rec read t ~size vaddr =
  if size <= page_room vaddr then
    let paddr = Mmu.translate t.mmu Mmu.Read vaddr in
    Bus.read t.bus paddr size
  else
    (* crosses a page: assemble bytewise *)
    let v = ref 0 in
    for i = 0 to size - 1 do
      v := !v lor (read t ~size:1 (vaddr + i) lsl (8 * i))
    done;
    !v

(** Physical write that has already passed (or bypassed) protection. *)
let write_phys_nocheck t ~size paddr v = Bus.write t.bus paddr size v

(** Ordered guest write: translates, runs the SMC protection loop
    (invoking the CMS handler until the write is allowed), then stores. *)
let rec write t ~size vaddr v =
  if size <= page_room vaddr then begin
    let paddr = Mmu.translate t.mmu Mmu.Write vaddr in
    let rec attempt tries =
      if tries > 8 then raise (Smc_stuck paddr);
      match check_store t ~paddr ~len:size with
      | None -> Bus.write t.bus paddr size v
      | Some hit ->
          note_smc t hit;
          t.on_smc hit ~paddr ~len:size;
          attempt (tries + 1)
    in
    attempt 0
  end
  else
    for i = 0 to size - 1 do
      write t ~size:1 (vaddr + i) ((v lsr (8 * i)) land 0xff)
    done

(** Instruction fetch of one byte (Exec access). *)
let fetch8 t vaddr =
  let paddr = Mmu.translate t.mmu Mmu.Exec vaddr in
  Bus.read t.bus paddr 1

(** Snapshot [len] code bytes starting at linear [addr] (used for
    translation-time source capture and self-checking). *)
let read_code t ~addr ~len =
  let b = Bytes.create len in
  for i = 0 to len - 1 do
    Bytes.set b i (Char.chr (fetch8 t (addr + i)))
  done;
  b

(* ------------------------------------------------------------------ *)
(* DMA                                                                 *)
(* ------------------------------------------------------------------ *)

(** DMA store into physical memory.  Protected pages get the coarse
    treatment the paper describes: notify CMS (which invalidates every
    translation on the page and unprotects it), then write. *)
let dma_write t paddr data =
  let len = Bytes.length data in
  let first = ppn_of paddr and last = ppn_of (paddr + len - 1) in
  for ppn = first to last do
    if is_protected t ~ppn then begin
      t.dma_smc_events <- t.dma_smc_events + 1;
      t.on_dma_smc ~ppn
    end
  done;
  Phys.blit_bytes t.phys ~addr:paddr data

(* ------------------------------------------------------------------ *)
(* Loading                                                             *)
(* ------------------------------------------------------------------ *)

(** Place an assembled listing into RAM at its base address (physical =
    linear for loading; the workload's page tables control the rest). *)
let load_listing t (l : X86.Asm.listing) =
  Phys.blit_bytes t.phys ~addr:l.X86.Asm.base l.X86.Asm.image
