(** Flat physical RAM.

    Little-endian byte-addressed storage.  All multi-byte accessors mask
    their results/arguments to the access width; addresses are plain ints
    (the machine is well under 2^62 bytes). *)

type t = { data : Bytes.t; size : int }

let create size = { data = Bytes.make size '\x00'; size }

let in_range t addr len = addr >= 0 && addr + len <= t.size

let read8 t addr = Char.code (Bytes.unsafe_get t.data addr)

let write8 t addr v = Bytes.unsafe_set t.data addr (Char.unsafe_chr (v land 0xff))

let read32 t addr =
  if addr + 4 <= t.size then
    (* fast path *)
    Int32.to_int (Bytes.get_int32_le t.data addr) land 0xffffffff
  else invalid_arg "Phys.read32: out of range"

let write32 t addr v =
  if addr + 4 <= t.size then Bytes.set_int32_le t.data addr (Int32.of_int v)
  else invalid_arg "Phys.write32: out of range"

(** Copy a byte string into RAM (used to load program images). *)
let blit_string t ~addr s =
  Bytes.blit_string s 0 t.data addr (String.length s)

let blit_bytes t ~addr b = Bytes.blit b 0 t.data addr (Bytes.length b)

(** Read [len] raw bytes (used for translation-time source snapshots). *)
let read_bytes t ~addr ~len = Bytes.sub t.data addr len
