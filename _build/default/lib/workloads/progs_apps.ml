(** Windows-productivity and synthetic-benchmark style workloads:
    CPUmark99, MultimediaMark99, Quattro Pro, WordPerfect.  These mirror
    the mix the paper's figures show for the Winstone/ZD benchmarks:
    string and dictionary processing, table arithmetic, and media
    blend/saturate kernels. *)

open X86.Asm

let data = 0x200000
let data2 = 0x240000
let dict = 0x280000

let acc v = add_mr (m 0x5100) v
let init = [ mov_mi (m 0x5100) 0 ]
let finish = [ mov_rm eax (m 0x5100); hlt ]

let wrap ~name ?(max_insns = 3_000_000) items =
  Suite.make ~name ~entry:0x10000 ~max_insns
    (assemble ~base:0x10000 (init @ items @ finish))

(* Deterministic text generator: fills [base..base+len) with words of
   lowercase letters separated by spaces. *)
let gen_text ~len ~seed =
  let b = Buffer.create len in
  let x = ref seed in
  while Buffer.length b < len do
    x := ((!x * 1103515245) + 12345) land 0x3fffffff;
    let wl = 2 + (!x land 7) in
    for k = 0 to wl - 1 do
      Buffer.add_char b (Char.chr (97 + ((!x lsr (3 * k)) + k) mod 26))
    done;
    Buffer.add_char b ' '
  done;
  Buffer.sub b 0 len

(* ------------------------------------------------------------------ *)
(* CPUmark99: a rotating mix of ALU / branch / memory microkernels     *)
(* ------------------------------------------------------------------ *)

let cpumark =
  wrap ~name:"CPUmark99 (Win98)"
    [
      mov_ri ebp 300; (* outer rounds through the mix *)
      mov_ri ebx 0;
      label "round";
      (* kernel 1: dependent ALU chain *)
      mov_ri eax 0x1234;
      mov_ri ecx 40;
      label "k1";
      add_ri eax 0x9e37;
      rol_ri eax 5;
      xor_ri eax 0x79b9;
      dec_r ecx;
      jne "k1";
      add_rr ebx eax;
      (* kernel 2: producer/consumer ping-pong between two buffers —
         store through EDI, immediately load the next operand through
         ESI (unprovable aliasing, the alias-hardware pattern) *)
      mov_ri edi data;
      mov_ri esi (data + 0x8000);
      mov_ri ecx 40;
      label "k2";
      mov_mr (mb edi) ecx;
      mov_rm edx (mb esi);
      add_rr ebx edx;
      mov_mr (mbd edi 4) ebx;
      add_rm ebx (mbd esi 4);
      add_ri edi 16;
      add_ri esi 16;
      dec_r ecx;
      jne "k2";
      (* kernel 3: branch ladder *)
      mov_rr eax ebx;
      and_ri eax 7;
      cmp_ri eax 3;
      jb "lt3";
      je "eq3";
      add_ri ebx 5;
      jmp "k3done";
      label "lt3";
      add_ri ebx 1;
      jmp "k3done";
      label "eq3";
      add_ri ebx 3;
      label "k3done";
      (* kernel 4: multiply/divide *)
      mov_rr eax ebx;
      or_ri eax 1;
      mov_ri edx 0;
      mov_ri ecx 17;
      div_r ecx;
      add_rr ebx edx;
      dec_r ebp;
      jne "round";
      acc ebx;
    ]

(* ------------------------------------------------------------------ *)
(* Quattro Pro: spreadsheet table arithmetic with column walks         *)
(* ------------------------------------------------------------------ *)

let quattro =
  wrap ~name:"Quattro Pro (WinNT)"
    [
      (* 64x64 table of ints *)
      mov_ri edi data;
      mov_ri ecx 4096;
      mov_ri esi 77;
      label "qp_fill";
      mov_ri eax 1103515245;
      imul_rr esi eax;
      add_ri esi 54321;
      mov_rr eax esi;
      sar_ri eax 8;
      mov_mr (mb edi) eax;
      add_ri edi 4;
      dec_r ecx;
      jne "qp_fill";
      (* 30 recalc passes: row sums, column max, running totals *)
      mov_ri ebp 30;
      mov_ri ebx 0;
      label "qp_pass";
      (* recalc status cells on the code page (mixed page, own chunk) *)
      inc_m (m 0x10f40);
      inc_m (m 0x10f44);
      inc_m (m 0x10f48);
      inc_m (m 0x10f4c);
      (* row sums *)
      mov_ri esi data;
      mov_ri edx 64; (* rows *)
      mov_ri edi data2; (* row-totals column *)
      label "qp_row";
      mov_ri ecx 16;
      mov_ri eax 0;
      label "qp_cell";
      (* running total written back every step; the next cell loads
         issue after it through a different base register *)
      mov_mr (mb edi) eax;
      add_rm eax (mb esi);
      add_rm eax (mbd esi 4);
      add_rm eax (mbd esi 8);
      add_rm eax (mbd esi 12);
      add_ri esi 16;
      dec_r ecx;
      jne "qp_cell";
      mov_mr (mb edi) eax;
      add_ri edi 4;
      add_rr ebx eax;
      dec_r edx;
      jne "qp_row";
      (* column walk with strided access (cache/scheduler stress) *)
      mov_ri esi data;
      mov_ri ecx 64;
      mov_ri eax 0;
      label "qp_col";
      mov_rm edx (mb esi);
      cmp_rr edx eax;
      jle "qp_nomax";
      mov_rr eax edx;
      label "qp_nomax";
      add_ri esi 256; (* next row, same column *)
      dec_r ecx;
      jne "qp_col";
      add_rr ebx eax;
      dec_r ebp;
      jne "qp_pass";
      acc ebx;
    ]

(* ------------------------------------------------------------------ *)
(* WordPerfect: text scanning, word counting, dictionary hashing       *)
(* ------------------------------------------------------------------ *)

let wordperfect =
  let text = gen_text ~len:12288 ~seed:4242 in
  Suite.make ~name:"Wordperfect (WinNT)" ~entry:0x10000 ~max_insns:3_000_000
    (assemble ~base:0x10000
       (init
       @ [
           (* clear the dictionary *)
           mov_ri edi dict;
           mov_ri ecx 4096;
           mov_ri eax 0;
           label "wp_clr";
           mov_mr (mb edi) eax;
           add_ri edi 4;
           dec_r ecx;
           jne "wp_clr";
           mov_ri ebp 6; (* passes over the document *)
           mov_ri ebx 0; (* word count *)
           label "wp_pass";
           mov_rl esi "wp_text";
           mov_ri edx 0; (* current word hash *)
           label "wp_scan";
           movzx eax (mb esi);
           inc_r esi;
           test_rr eax eax;
           je "wp_eot";
           cmp_ri eax 32;
           je "wp_word_end";
           (* extend hash: h = h*31 + c *)
           mov_rr ecx edx;
           shl_ri edx 5;
           sub_rr edx ecx;
           add_rr edx eax;
           jmp "wp_scan";
           label "wp_word_end";
           inc_r ebx;
           (* bump dictionary bucket *)
           and_ri edx 0xfff;
           inc_m (m ~index:(edx, 4) dict);
           mov_ri edx 0;
           jmp "wp_scan";
           label "wp_eot";
           dec_r ebp;
           jne "wp_pass";
           (* digest: word count + some buckets *)
           acc ebx;
           mov_rm ecx (m (dict + 0x40));
           acc ecx;
           mov_rm ecx (m (dict + 0x999 * 4));
           acc ecx;
         ]
       @ finish
       @ [ label "wp_text"; raw (text ^ "\x00") ]))

(* ------------------------------------------------------------------ *)
(* MultimediaMark99: blend/saturate over pixel buffers                 *)
(* ------------------------------------------------------------------ *)

let multimedia =
  wrap ~name:"Multimedia (Win98)"
    [
      (* two "frames" of 16k pixels (bytes) *)
      mov_ri edi data;
      mov_ri ecx 8192; (* dwords: two 16K buffers back to back *)
      mov_ri esi 900;
      label "mm_fill";
      mov_ri eax 1103515245;
      imul_rr esi eax;
      add_ri esi 12345;
      mov_rr eax esi;
      mov_mr (mb edi) eax;
      add_ri edi 4;
      dec_r ecx;
      jne "mm_fill";
      mov_ri ebp 10; (* frames *)
      mov_ri ebx 0;
      label "mm_frame";
      (* per-frame codec statistics live at the top of the code page
         (0x10f00-, same page as the hot loops, own 64-byte chunk):
         page-granular protection faults on every update, fine-grain
         protection does not — the Table 1 traffic *)
      inc_m (m 0x10f00);
      inc_m (m 0x10f04);
      inc_m (m 0x10f08);
      inc_m (m 0x10f0c);
      inc_m (m 0x10f10);
      inc_m (m 0x10f14);
      inc_m (m 0x10f18);
      inc_m (m 0x10f1c);
      mov_ri esi data;
      mov_ri edi (data + 16384);
      mov_ri ecx 16384;
      label "mm_px";
      (* byte-wise 50/50 blend with saturation *)
      movzx eax (mb esi);
      movzx edx (mb edi);
      add_rr eax edx;
      shr_ri eax 1;
      add_ri eax 8; (* brighten *)
      cmp_ri eax 255;
      jbe "mm_nosat";
      mov_ri eax 255;
      label "mm_nosat";
      mov8_mr (mb edi) X86.Regs.eax;
      add_rr ebx eax;
      inc_r esi;
      inc_r edi;
      dec_r ecx;
      jne "mm_px";
      dec_r ebp;
      jne "mm_frame";
      acc ebx;
    ]

let all = [ cpumark; quattro; wordperfect; multimedia ]
