lib/workloads/progs_quake.ml: Fmt List Machine Progs_boot Suite X86
