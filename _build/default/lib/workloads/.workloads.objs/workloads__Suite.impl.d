lib/workloads/suite.ml: Bytes Cms Fmt X86
