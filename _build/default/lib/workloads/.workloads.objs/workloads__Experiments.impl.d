lib/workloads/experiments.ml: Cms Fmt List Machine Progs_apps Progs_boot Progs_quake Progs_spec Suite
