lib/workloads/progs_spec.ml: Suite X86
