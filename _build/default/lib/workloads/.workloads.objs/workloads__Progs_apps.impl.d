lib/workloads/progs_apps.ml: Buffer Char Suite X86
