lib/workloads/progs_boot.ml: Buffer Bytes Char Fmt List Machine String Suite X86
