(** Synthetic OS-boot workloads.

    The paper's boot benchmarks (DOS, Linux, OS/2, Windows 95/98/ME/
    NT/XP) share a character profile that drives its numbers: large
    amounts of run-once code, REP-copy relocation, decompression loops,
    heavy port and memory-mapped I/O while probing devices, BIOS-style
    pages mixing code with writable data, driver-install-style immediate
    patching, timer interrupts, and DMA paging traffic.  One
    parameterized generator reproduces that profile; each boot is an
    instance with its own mix (e.g. Windows/ME boots are MMIO-heavy,
    Windows/9X does driver SMC, Linux decompresses a big kernel). *)

open X86.Asm

type profile = {
  name : string;
  fb_clear_words : int;  (** memory-mapped I/O intensity *)
  copy_kb : int;  (** REP MOVSD relocation volume *)
  decompress_kb : int;  (** RLE "kernel image" size *)
  unique_blocks : int;  (** run-once code blocks (cold code) *)
  mixed_sections : int;  (** code pages holding writable counters *)
  mixed_iters : int;
  smc_rounds : int;  (** driver-style immediate patching rounds *)
  hot_loop_iters : int;
      (** steady-state "kernel services" loop iterations: the hot,
          translated execution that boots settle into *)
  timer_period : int;  (** 0 = no timer *)
  dma_sectors : int;
  table_words : int;  (** page-table-style data structure init *)
}

(* Deterministic pseudo-random stream (no external state). *)
let mix seed i =
  let x = (seed * 0x9e3779b1) + (i * 0x85ebca6b) in
  let x = x lxor (x lsr 13) in
  let x = x * 0xc2b2ae35 land 0x3fffffff in
  x lxor (x lsr 16)

(* Build an RLE blob: sequences of runs (0x80+n, value) and literals
   (n, bytes...), terminated by 0. *)
let rle_blob ~kb ~seed =
  let buf = Buffer.create (kb * 1024) in
  let budget = ref (kb * 1024) in
  let i = ref 0 in
  while !budget > 8 do
    incr i;
    let r = mix seed !i in
    if r land 1 = 0 then begin
      (* run: 3..66 repetitions *)
      let n = 3 + (r lsr 1 land 0x3f) in
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      Buffer.add_char buf (Char.chr (1 + (r lsr 8 land 0x7f)));
      budget := !budget - 2
    end
    else begin
      (* literal: 1..15 bytes *)
      let n = 1 + (r lsr 1 land 0xf) in
      Buffer.add_char buf (Char.chr n);
      for k = 1 to n do
        Buffer.add_char buf (Char.chr (1 + (mix seed (!i + (k * 77)) land 0x7e)))
      done;
      budget := !budget - n - 1
    end
  done;
  Buffer.add_char buf '\x00';
  Buffer.contents buf

(* Memory map used by all boots. *)
let idt = 0x1000
let idt_ptr = 0x5000
let checksum_cell = 0x5100
let jiffies = 0x5200
let src_region = 0x100000
let dst_region = 0x140000
let table_region = 0x180000
let dma_buffer = 0x1c0000

(* imm32 offset inside the canonical "add eax, imm32" encoding. *)
let add_eax_imm_off =
  match (X86.Encode.encode ~at:0 (X86.Insn.Arith (X86.Insn.Add, X86.Insn.S32, X86.Insn.RM_I (X86.Insn.R X86.Regs.eax, 0)))).X86.Encode.imm32_off with
  | Some o -> o
  | None -> assert false

let items_of_profile p =
  let setup =
    [
      (* IDT + timer handler *)
      mov_rl eax "tick_handler";
      mov_mr (m (idt + (4 * (Machine.Irq.base_vector + Machine.Platform.timer_irq_line)))) eax;
      mov_rl eax "disk_handler";
      mov_mr (m (idt + (4 * (Machine.Irq.base_vector + Machine.Platform.disk_irq_line)))) eax;
      mov_mi (m idt_ptr) idt;
      lidt (m idt_ptr);
      mov_mi (m checksum_cell) 0;
      mov_mi (m jiffies) 0;
    ]
    @ (if p.timer_period > 0 then
         [
           mov_ri eax (p.timer_period land 0xffff);
           mov_ri edx Machine.Platform.timer_base;
           out32_dx;
           mov_ri eax (p.timer_period lsr 16);
           mov_ri edx (Machine.Platform.timer_base + 1);
           out32_dx;
           sti;
         ]
       else [])
  in
  let banner =
    [
      mov_rl esi "banner_msg";
      label "banner_loop";
      movzx eax (mb esi);
      test_ri eax 0xff;
      je "banner_done";
      mov_ri edx Machine.Platform.uart_base;
      I (X86.Insn.Out (X86.Insn.S8, X86.Insn.PortDx));
      inc_r esi;
      jmp "banner_loop";
      label "banner_done";
    ]
  in
  let fb_probe =
    if p.fb_clear_words = 0 then []
    else
      [
        (* splash-screen clear: straight MMIO stores *)
        mov_ri edi Machine.Platform.fb_base;
        mov_ri ecx p.fb_clear_words;
        mov_ri eax 0x07200720;
        label "fb_clear";
        mov_mr (mb edi) eax;
        add_ri edi 4;
        dec_r ecx;
        jne "fb_clear";
      ]
  in
  let decompress =
    if p.decompress_kb = 0 then []
    else
      [
        mov_rl esi "kernel_blob";
        mov_ri edi dst_region;
        label "d_loop";
        movzx ebx (mb esi);
        inc_r esi;
        test_rr ebx ebx;
        je "d_done";
        cmp_ri ebx 0x80;
        jb "d_literal";
        sub_ri ebx 0x80;
        movzx edx (mb esi);
        inc_r esi;
        label "d_run";
        mov8_mr (mb edi) X86.Regs.edx;
        inc_r edi;
        dec_r ebx;
        jne "d_run";
        jmp "d_loop";
        label "d_literal";
        label "d_lit_loop";
        mov8_rm X86.Regs.eax (mb esi);
        mov8_mr (mb edi) X86.Regs.eax;
        inc_r esi;
        inc_r edi;
        dec_r ebx;
        jne "d_lit_loop";
        jmp "d_loop";
        label "d_done";
        (* checksum the decompressed image *)
        mov_ri esi dst_region;
        mov_rr ecx edi;
        sub_rr ecx esi;
        shr_ri ecx 2;
        mov_ri eax 0;
        label "d_sum";
        add_rm eax (mb esi);
        add_ri esi 4;
        dec_r ecx;
        jne "d_sum";
        add_mr (m checksum_cell) eax;
      ]
  in
  let relocate =
    if p.copy_kb = 0 then []
    else
      [
        (* fill then relocate with REP MOVSD *)
        mov_ri edi src_region;
        mov_ri ecx (p.copy_kb * 256);
        mov_ri eax 0x12345678;
        rep_stosd;
        mov_ri esi src_region;
        mov_ri edi (src_region + (p.copy_kb * 1024) + 0x1000);
        mov_ri ecx (p.copy_kb * 256);
        rep_movsd;
        mov_rm eax (m (src_region + (p.copy_kb * 1024) + 0x1000));
        add_mr (m checksum_cell) eax;
      ]
  in
  let tables =
    if p.table_words = 0 then []
    else
      [
        (* page-table style init: strided stores with computed values *)
        mov_ri edi table_region;
        mov_ri ecx p.table_words;
        mov_ri ebx 0;
        label "tbl";
        mov_rr eax ebx;
        imul_rm eax (m 0); (* placeholder, replaced by imm variant below *)
        label "tbl_after_mul";
        or_ri eax 0x7;
        mov_mr (mb edi) eax;
        add_ri edi 4;
        inc_r ebx;
        dec_r ecx;
        jne "tbl";
        add_rm eax (m table_region);
        add_mr (m checksum_cell) eax;
      ]
  in
  (* replace the placeholder multiply by a clean shl/add mix *)
  let tables =
    List.concat_map
      (fun it ->
        match it with
        | I (X86.Insn.Imul2 (_, X86.Insn.M _)) ->
            [ shl_ri eax 12; add_ri eax 0x1000 ]
        | Label "tbl_after_mul" -> []
        | it -> [ it ])
      tables
  in
  let unique_blocks =
    (* run-once initialization code: each block is distinct straight-line
       code executed exactly once (cold; should stay interpreted) *)
    List.concat
      (List.init p.unique_blocks (fun i ->
           let k1 = mix 0xb007 i and k2 = mix 0xfeed i in
           [
             label (Fmt.str "once_%d" i);
             add_ri eax k1;
             xor_ri eax k2;
             rol_ri eax (1 + (i mod 7));
             add_mr (m checksum_cell) eax;
           ]))
  in
  let mixed =
    (* BIOS-style sections: writable counters on the same page (and
       nearby chunks) as the hot code that updates them *)
    List.concat
      (List.init p.mixed_sections (fun i ->
           [
             jmp (Fmt.str "mx_code_%d" i);
             (* the counter gets its own 64-byte chunk: fine-grain
                protection can discriminate it from the code, page-level
                protection cannot — the Table 1 contrast *)
             align 64;
             label (Fmt.str "mx_counter_%d" i);
             dd [ 0 ];
             align 64;
             label (Fmt.str "mx_code_%d" i);
             mov_ri ecx p.mixed_iters;
             label (Fmt.str "mx_loop_%d" i);
             I
               (X86.Insn.Inc
                  (X86.Insn.S32, X86.Insn.M (m 0)));
             (* the displacement 0 is patched post-assembly: see below *)
             add_ri eax 1;
             dec_r ecx;
             jne (Fmt.str "mx_loop_%d" i);
           ]))
  in
  let smc =
    if p.smc_rounds = 0 then []
    else
      [
        (* driver-install pattern: patch the immediate of the blit
           routine, then run it hot *)
        mov_ri esi 1;
        label "smc_outer";
        mov_rl edi "smc_insn";
        mov_mr (mbd edi add_eax_imm_off) esi;
        mov_ri ecx 400;
        mov_ri ebx 0;
        label "smc_inner";
        label "smc_insn";
        add_ri eax 0;
        add_ri ebx 1;
        dec_r ecx;
        jne "smc_inner";
        inc_r esi;
        cmp_ri esi (p.smc_rounds + 1);
        jne "smc_outer";
        add_mr (m checksum_cell) ebx;
      ]
  in
  let services =
    if p.hot_loop_iters = 0 then []
    else
      [
        (* steady-state kernel loop: run-queue accounting.  Stores go
           through EDI (accounting array) and the next task's loads come
           through ESI (run queue) — store-then-load through different
           base registers, the pattern whose reordering needs the alias
           hardware (Figures 2/3). *)
        mov_ri esi table_region;
        mov_ri edi dma_buffer; (* accounting array *)
        mov_ri ecx p.hot_loop_iters;
        mov_ri ebx 0;
        label "svc";
        (* task A: load, account, store via edi *)
        mov_rm edx (mb esi);
        add_ri edx 1;
        rol_ri edx 3;
        xor_rr ebx edx;
        mov_mr (mb edi) edx;
        (* same-base disjoint pair: provable without alias hardware *)
        mov_rm eax (mbd edi 12);
        xor_rr ebx eax;
        (* task B: loads through esi AFTER the store through edi *)
        mov_rm eax (mbd esi 4);
        add_rm eax (mbd esi 8);
        sar_ri eax 2;
        add_rr ebx eax;
        mov_mr (mbd edi 4) eax;
        (* advance both queues, wrapping inside a 4K window *)
        add_ri esi 8;
        add_ri edi 8;
        and_ri esi (table_region lor 0xfff);
        or_ri esi table_region;
        and_ri edi (dma_buffer lor 0xfff);
        or_ri edi dma_buffer;
        dec_r ecx;
        jne "svc";
        add_mr (m checksum_cell) ebx;
      ]
  in
  let dma =
    if p.dma_sectors = 0 then []
    else
      [
        mov_ri edx Machine.Platform.disk_base;
        mov_ri eax 0;
        out32_dx;
        mov_ri edx (Machine.Platform.disk_base + 1);
        mov_ri eax dma_buffer;
        out32_dx;
        mov_ri edx (Machine.Platform.disk_base + 2);
        mov_ri eax p.dma_sectors;
        out32_dx;
        mov_ri edx (Machine.Platform.disk_base + 3);
        mov_ri eax 1;
        out32_dx;
        label "dma_wait";
        mov_ri edx (Machine.Platform.disk_base + 3);
        in32_dx;
        test_ri eax 1;
        jne "dma_wait";
        (* checksum the DMA'd data *)
        mov_ri esi dma_buffer;
        mov_ri ecx (p.dma_sectors * 128);
        mov_ri eax 0;
        label "dma_sum";
        add_rm eax (mb esi);
        add_ri esi 4;
        dec_r ecx;
        jne "dma_sum";
        add_mr (m checksum_cell) eax;
      ]
  in
  let finale =
    [
      (* gather: checksum + jiffies -> eax; quiesce; halt *)
      cli;
      mov_ri eax 0;
      mov_ri edx Machine.Platform.timer_base;
      out32_dx;
      mov_ri edx (Machine.Platform.timer_base + 1);
      out32_dx;
      mov_rm eax (m checksum_cell);
      hlt;
      label "tick_handler";
      inc_m (m jiffies);
      iret;
      label "disk_handler";
      iret;
      label "banner_msg";
      raw (p.name ^ " booting...\x00");
      align 4;
      label "kernel_blob";
      raw (if p.decompress_kb > 0 then rle_blob ~kb:p.decompress_kb ~seed:(String.length p.name) else "\x00");
      align 4;
    ]
  in
  setup @ banner @ fb_probe @ decompress @ relocate @ tables @ unique_blocks
  @ mixed @ smc @ services @ dma @ finale

(* The mixed-section counters need their own addresses folded into the
   inc instructions: assemble twice. *)
let build p =
  let items1 = items_of_profile p in
  let l1 = assemble ~base:0x10000 items1 in
  let fix items =
    let next_counter = ref 0 in
    List.map
      (fun it ->
        match it with
        | I (X86.Insn.Inc (X86.Insn.S32, X86.Insn.M m0)) when m0.X86.Insn.disp = 0 && m0.X86.Insn.base = None ->
            let i = !next_counter in
            incr next_counter;
            I
              (X86.Insn.Inc
                 ( X86.Insn.S32,
                   X86.Insn.M (m (label_addr l1 (Fmt.str "mx_counter_%d" i))) ))
        | it -> it)
      items
  in
  assemble ~base:0x10000 (fix items1)

let workload ?(max_insns = 4_000_000) p =
  let listing = build p in
  Suite.make ~kind:Suite.Boot ~name:p.name ~entry:0x10000 ~max_insns
    ~uses_timer:(p.timer_period > 0)
    ?disk_image:
      (if p.dma_sectors > 0 then
         Some
           (Bytes.init (max 4096 (p.dma_sectors * 512)) (fun i ->
                Char.chr (mix 0xd15c i land 0xff)))
       else None)
    listing

(* ------------------------------------------------------------------ *)
(* The eight boots                                                     *)
(* ------------------------------------------------------------------ *)

let dos =
  workload
    {
      name = "DOS Boot";
      hot_loop_iters = 30000;
      fb_clear_words = 2000;
      copy_kb = 4;
      decompress_kb = 2;
      unique_blocks = 60;
      mixed_sections = 2;
      mixed_iters = 300;
      smc_rounds = 2;
      timer_period = 30_000;
      dma_sectors = 2;
      table_words = 256;
    }

let linux =
  workload
    {
      name = "Linux Boot";
      hot_loop_iters = 100000;
      fb_clear_words = 1000;
      copy_kb = 24;
      decompress_kb = 24;
      unique_blocks = 150;
      mixed_sections = 1;
      mixed_iters = 200;
      smc_rounds = 0;
      timer_period = 25_000;
      dma_sectors = 8;
      table_words = 2048;
    }

let os2 =
  workload
    {
      name = "OS/2 Boot";
      hot_loop_iters = 70000;
      fb_clear_words = 1500;
      copy_kb = 12;
      decompress_kb = 8;
      unique_blocks = 120;
      mixed_sections = 2;
      mixed_iters = 400;
      smc_rounds = 1;
      timer_period = 25_000;
      dma_sectors = 4;
      table_words = 1024;
    }

let win95 =
  workload
    {
      name = "Windows 95 Boot";
      hot_loop_iters = 90000;
      fb_clear_words = 3000;
      copy_kb = 16;
      decompress_kb = 8;
      unique_blocks = 180;
      mixed_sections = 4;
      mixed_iters = 600;
      smc_rounds = 4;
      timer_period = 20_000;
      dma_sectors = 6;
      table_words = 1536;
    }

let win98 =
  workload
    {
      name = "Windows 98 Boot";
      hot_loop_iters = 100000;
      fb_clear_words = 3500;
      copy_kb = 20;
      decompress_kb = 10;
      unique_blocks = 220;
      mixed_sections = 5;
      mixed_iters = 700;
      smc_rounds = 5;
      timer_period = 20_000;
      dma_sectors = 8;
      table_words = 2048;
    }

let winme =
  workload
    {
      name = "Windows ME Boot";
      hot_loop_iters = 110000;
      fb_clear_words = 6000;
      copy_kb = 24;
      decompress_kb = 12;
      unique_blocks = 240;
      mixed_sections = 6;
      mixed_iters = 800;
      smc_rounds = 6;
      timer_period = 18_000;
      dma_sectors = 8;
      table_words = 2048;
    }

let winnt =
  workload
    {
      name = "Windows NT Boot";
      hot_loop_iters = 120000;
      fb_clear_words = 1200;
      copy_kb = 32;
      decompress_kb = 16;
      unique_blocks = 200;
      mixed_sections = 1;
      mixed_iters = 200;
      smc_rounds = 0;
      timer_period = 22_000;
      dma_sectors = 12;
      table_words = 4096;
    }

let winxp =
  workload
    {
      name = "Windows XP Boot";
      hot_loop_iters = 130000;
      fb_clear_words = 4000;
      copy_kb = 40;
      decompress_kb = 20;
      unique_blocks = 260;
      mixed_sections = 3;
      mixed_iters = 500;
      smc_rounds = 2;
      timer_period = 22_000;
      dma_sectors = 16;
      table_words = 4096;
    }

let all = [ dos; linux; os2; win95; win98; winme; winnt; winxp ]
