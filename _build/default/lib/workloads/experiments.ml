(** Experiment harness: regenerates every table and figure of the
    paper's evaluation (see DESIGN.md experiment index).

    Each experiment returns typed rows and can render itself as text in
    the shape the paper reports (per-benchmark percentages plus means
    for the figures; ratio columns for Table 1). *)

let boots () = Progs_boot.all
let apps () = Progs_spec.all @ Progs_apps.all @ [ Progs_quake.quake ]

let default_cfg = Cms.Config.default

let geo_mean = function
  | [] -> 0.0
  | xs ->
      (* arithmetic mean, like the paper's "Mean" rows *)
      List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

(* ------------------------------------------------------------------ *)
(* Figures 2 and 3: degradation without reordering / alias hardware    *)
(* ------------------------------------------------------------------ *)

type deg_row = { workload : string; kind : Suite.kind; percent : float }

let degradation_experiment ~vs () =
  let all = boots () @ apps () in
  List.map
    (fun w ->
      {
        workload = w.Suite.name;
        kind = w.Suite.kind;
        percent = Suite.degradation ~baseline:default_cfg ~vs w;
      })
    all

let fig2 () =
  degradation_experiment
    ~vs:{ default_cfg with Cms.Config.enable_reorder = false }
    ()

let fig3 () =
  degradation_experiment
    ~vs:{ default_cfg with Cms.Config.enable_alias_hw = false }
    ()

let pp_degradation ~title fmt rows =
  Fmt.pf fmt "=== %s ===@." title;
  let show r = Fmt.pf fmt "  %-28s %6.2f%%@." r.workload r.percent in
  let bs = List.filter (fun r -> r.kind = Suite.Boot) rows in
  let as_ = List.filter (fun r -> r.kind = Suite.App) rows in
  List.iter show bs;
  Fmt.pf fmt "  %-28s %6.2f%%@." "Mean (all boots)"
    (geo_mean (List.map (fun r -> r.percent) bs));
  List.iter show as_;
  Fmt.pf fmt "  %-28s %6.2f%%@." "Mean (all apps)"
    (geo_mean (List.map (fun r -> r.percent) as_))

(* ------------------------------------------------------------------ *)
(* Table 1: fine-grain protection                                      *)
(* ------------------------------------------------------------------ *)

type table1_row = {
  bench : string;
  faults_with : int;
  faults_without : int;
  fault_ratio : float;
  mpi_with : float;
  mpi_without : float;
  slowdown : float;
}

let table1_workloads () =
  [
    Progs_boot.win95;
    Progs_boot.win98;
    Progs_apps.multimedia;
    (* "WinStone Corel" stand-in: the Winstone productivity app with the
       most mixed-page traffic in our suite *)
    Progs_apps.quattro;
    Progs_quake.quake;
  ]

(* The table isolates the fine-grain protection hardware: the adaptive
   SMC ladder (self-reval/self-check) is held off in both configs, as
   in the paper's comparison, otherwise the ladder rescues the
   page-granularity configuration and hides the contrast. *)
let table1 () =
  let base =
    {
      default_cfg with
      Cms.Config.enable_self_reval = false;
      enable_self_check = false;
      enable_stylized = false;
      enable_groups = false;
    }
  in
  List.map
    (fun w ->
      let t_fg = Suite.run ~cfg:base w in
      let t_nofg =
        Suite.run ~cfg:{ base with Cms.Config.enable_fine_grain = false } w
      in
      let f_with = (Cms.mem t_fg).Machine.Mem.smc_events
      and f_without = (Cms.mem t_nofg).Machine.Mem.smc_events in
      {
        bench = w.Suite.name;
        faults_with = f_with;
        faults_without = f_without;
        fault_ratio = float_of_int f_without /. float_of_int (max 1 f_with);
        mpi_with = Cms.mpi t_fg;
        mpi_without = Cms.mpi t_nofg;
        slowdown = Cms.mpi t_nofg /. Cms.mpi t_fg;
      })
    (table1_workloads ())

let pp_table1 fmt rows =
  Fmt.pf fmt "=== Table 1: Slowdown Without Fine-Grain Protection ===@.";
  Fmt.pf fmt "  %-28s %10s %10s %8s %9s@." "" "faults+fg" "faults-fg"
    "ratio" "slowdown";
  List.iter
    (fun r ->
      Fmt.pf fmt "  %-28s %10d %10d %7.1fx %8.2fx@." r.bench r.faults_with
        r.faults_without r.fault_ratio r.slowdown)
    rows

(* ------------------------------------------------------------------ *)
(* §3.6.3: cost of forcing all translations self-checking              *)
(* ------------------------------------------------------------------ *)

type selfcheck_row = {
  sc_bench : string;
  code_growth : float;  (** percent *)
  molecule_growth : float;  (** percent *)
}

let selfcheck () =
  let all = boots () @ apps () in
  List.map
    (fun w ->
      let base = Suite.run ~cfg:default_cfg w in
      let sc =
        Suite.run
          ~cfg:{ default_cfg with Cms.Config.force_self_check = true }
          w
      in
      let code t =
        let s = Cms.stats t in
        float_of_int s.Cms.Stats.translated_atoms
        /. float_of_int (max 1 s.Cms.Stats.insns_translated)
      in
      {
        sc_bench = w.Suite.name;
        code_growth = ((code sc /. code base) -. 1.0) *. 100.0;
        molecule_growth =
          ((Cms.mpi sc /. Cms.mpi base) -. 1.0) *. 100.0;
      })
    all

let pp_selfcheck fmt rows =
  Fmt.pf fmt "=== Self-checking translations (force all, §3.6.3) ===@.";
  Fmt.pf fmt "  %-28s %12s %14s@." "" "code growth" "molecule growth";
  List.iter
    (fun r ->
      Fmt.pf fmt "  %-28s %11.1f%% %13.1f%%@." r.sc_bench r.code_growth
        r.molecule_growth)
    rows;
  Fmt.pf fmt "  %-28s %11.1f%% %13.1f%%@." "Mean"
    (geo_mean (List.map (fun r -> r.code_growth) rows))
    (geo_mean (List.map (fun r -> r.molecule_growth) rows))

(* ------------------------------------------------------------------ *)
(* §3.6.2: self-revalidation frame-rate benefit on Quake               *)
(* ------------------------------------------------------------------ *)

type selfreval_result = {
  fps_with : float;  (** steady-state frames per million molecules *)
  fps_without : float;
  improvement : float;  (** percent *)
  reval_hits : int;
  faults_with : int;  (** steady-state SMC fault events *)
  faults_without : int;
}

(* Steady-state measurement: let the adaptive ladder converge over the
   first third of the demo, then measure frames per molecule (and fault
   traffic) over the remainder — the regime the paper's minutes-long
   demo run lives in. *)
let steady_quake cfg =
  let w = Progs_quake.quake in
  let t = Cms.create ~cfg ?disk_image:w.Suite.disk_image () in
  Cms.load t w.Suite.listing;
  Cms.boot ~map_mib:4 t ~entry:w.Suite.entry;
  let rec until_frames n =
    if Cms.frames t < n then begin
      match Cms.run ~max_insns:(Cms.retired t + 200_000) t with
      | Cms.Engine.Halted -> ()
      | Cms.Engine.Insn_limit -> until_frames n
    end
  in
  until_frames 20;
  let m0 = Cms.total_molecules t and f0 = Cms.frames t in
  let sm0 = (Cms.mem t).Machine.Mem.smc_events in
  until_frames 60;
  let dm = Cms.total_molecules t - m0 and df = Cms.frames t - f0 in
  let faults = (Cms.mem t).Machine.Mem.smc_events - sm0 in
  ( float_of_int df /. (float_of_int (max 1 dm) /. 1_000_000.),
    faults,
    (Cms.stats t).Cms.Stats.reval_hits )

let selfreval () =
  let f_with, faults_with, reval_hits = steady_quake default_cfg in
  let f_without, faults_without, _ =
    steady_quake { default_cfg with Cms.Config.enable_self_reval = false }
  in
  {
    fps_with = f_with;
    fps_without = f_without;
    improvement = ((f_with /. f_without) -. 1.0) *. 100.0;
    reval_hits;
    faults_with;
    faults_without;
  }

let pp_selfreval fmt r =
  Fmt.pf fmt "=== Self-revalidation ladder on Quake Demo2 (§3.6.2) ===@.";
  Fmt.pf fmt
    "  steady-state frames/Mmolecule with: %.2f, without: %.2f  (%+.0f%%)@."
    r.fps_with r.fps_without r.improvement;
  Fmt.pf fmt
    "  steady-state SMC faults with: %d, without: %d;  %d revalidations \
     during warmup@."
    r.faults_with r.faults_without r.reval_hits

(* ------------------------------------------------------------------ *)
(* §3.6.5: translation groups on the BLT-driver pattern                *)
(* ------------------------------------------------------------------ *)

type groups_result = {
  translations_with : int;
  translations_without : int;
  group_hits : int;
  mpi_groups_with : float;
  mpi_groups_without : float;
}

let groups () =
  let w = Progs_quake.blt_driver ~versions:8 ~installs:48 ~pixels:300 () in
  let t_with = Suite.run ~cfg:default_cfg w in
  let t_without =
    Suite.run ~cfg:{ default_cfg with Cms.Config.enable_groups = false } w
  in
  {
    translations_with = (Cms.stats t_with).Cms.Stats.translations;
    translations_without = (Cms.stats t_without).Cms.Stats.translations;
    group_hits = (Cms.stats t_with).Cms.Stats.group_hits;
    mpi_groups_with = Cms.mpi t_with;
    mpi_groups_without = Cms.mpi t_without;
  }

let pp_groups fmt r =
  Fmt.pf fmt "=== Translation groups on the BLT driver (§3.6.5) ===@.";
  Fmt.pf fmt
    "  translations: %d with groups (%d group hits) vs %d without; mpi %.1f \
     vs %.1f@."
    r.translations_with r.group_hits r.translations_without r.mpi_groups_with
    r.mpi_groups_without

(* ------------------------------------------------------------------ *)
(* Figure 1 in numbers: interpret -> translate -> chain                *)
(* ------------------------------------------------------------------ *)

type flow_row = {
  fl_bench : string;
  retired_interp : int;
  retired_translated : int;
  translated_frac : float;
  translations : int;
  chain_patches : int;
  lookups : int;
}

let flow () =
  List.map
    (fun w ->
      let t = Suite.run ~cfg:default_cfg w in
      let s = Cms.stats t in
      let it = s.Cms.Stats.x86_interp and tr = s.Cms.Stats.x86_translated in
      {
        fl_bench = w.Suite.name;
        retired_interp = it;
        retired_translated = tr;
        translated_frac = float_of_int tr /. float_of_int (max 1 (it + tr));
        translations = s.Cms.Stats.translations;
        chain_patches = s.Cms.Stats.chain_patches;
        lookups = s.Cms.Stats.lookups;
      })
    [ Progs_boot.dos; Progs_spec.compress; Progs_quake.quake ]

let pp_flow fmt rows =
  Fmt.pf fmt "=== Control-flow profile (Figure 1 in numbers) ===@.";
  Fmt.pf fmt "  %-28s %10s %12s %7s %7s %8s %8s@." "" "interp" "translated"
    "frac" "xlate" "chains" "lookups";
  List.iter
    (fun r ->
      Fmt.pf fmt "  %-28s %10d %12d %6.1f%% %7d %8d %8d@." r.fl_bench
        r.retired_interp r.retired_translated (100. *. r.translated_frac)
        r.translations r.chain_patches r.lookups)
    rows

(* ------------------------------------------------------------------ *)
(* Ablations: design-choice sweeps beyond the paper                    *)
(* ------------------------------------------------------------------ *)

type sweep_point = { param : int; mpi_value : float }

let sweep ~name:_ ~points ~cfg_of w =
  List.map
    (fun p -> { param = p; mpi_value = Suite.mpi ~cfg:(cfg_of p) w })
    points

let threshold_sweep () =
  sweep ~name:"translate threshold"
    ~points:[ 2; 8; 24; 100; 1000; 100_000 ]
    ~cfg_of:(fun p -> { default_cfg with Cms.Config.translate_threshold = p })
    Progs_spec.compress

let region_sweep () =
  sweep ~name:"max region size"
    ~points:[ 4; 10; 25; 50; 100; 200 ]
    ~cfg_of:(fun p -> { default_cfg with Cms.Config.max_region_insns = p })
    Progs_spec.tomcatv

let alias_slot_sweep () =
  sweep ~name:"alias slots"
    ~points:[ 0; 1; 2; 4; 8; 16 ]
    ~cfg_of:(fun p ->
      if p = 0 then { default_cfg with Cms.Config.enable_alias_hw = false }
      else { default_cfg with Cms.Config.alias_slots = p })
    Progs_spec.compress

let chaining_ablation () =
  let w = Progs_spec.gcc in
  [
    { param = 1; mpi_value = Suite.mpi ~cfg:default_cfg w };
    {
      param = 0;
      mpi_value =
        Suite.mpi ~cfg:{ default_cfg with Cms.Config.enable_chaining = false } w;
    };
  ]

let sbuf_sweep () =
  sweep ~name:"store buffer capacity"
    ~points:[ 8; 16; 32; 64; 128 ]
    ~cfg_of:(fun p -> { default_cfg with Cms.Config.sbuf_capacity = p })
    Progs_apps.quattro

let pp_sweep ~title ~param_name fmt points =
  Fmt.pf fmt "=== Ablation: %s ===@." title;
  List.iter
    (fun p -> Fmt.pf fmt "  %-24s %8d  mpi=%8.2f@." param_name p.param p.mpi_value)
    points
