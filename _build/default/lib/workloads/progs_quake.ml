(** Quake-style game workload and the Windows/9X BLT-driver pattern.

    Quake Demo2: per frame, the "game" patches a lighting constant into
    the renderer's instruction stream (Doom-style stylized SMC, paper
    §3.6.4 footnote), renders into an offscreen buffer with fixed-point
    shading, blits to the memory-mapped frame buffer, and signals end of
    frame on the frame port — giving the frames-per-molecule metric the
    §3.6.2 experiment uses.  The renderer also keeps writable state next
    to its code, the mixed code/data layout the paper attributes to
    hand-written assembly modules.

    The BLT driver reproduces §3.6.5: one blit routine rewritten among a
    small set of recurring versions, each version executed hot — the
    translation-group workload. *)

open X86.Asm

let offscreen = 0x200000
let world = 0x240000

let add_eax_imm_off = Progs_boot.add_eax_imm_off

let quake_items palette_addr =
  [
    (* world data *)
    mov_ri edi world;
    mov_ri ecx 2048;
    mov_ri esi 31;
    label "q_fill";
    mov_ri eax 1103515245;
    imul_rr esi eax;
    add_ri esi 12345;
    mov_rr eax esi;
    shr_ri eax 8;
    and_ri eax 0xff;
    mov_mr (mb edi) eax;
    add_ri edi 4;
    dec_r ecx;
    jne "q_fill";
    mov_mi (m 0x5100) 0;
    mov_ri ebp 60; (* frames *)
    label "q_frame";
    (* game logic: rewrite the lighting palette several times per frame
       (dynamic lights).  The palette lives in the middle of the
       renderer's code (hand-written asm style), so these writes hit the
       renderer's protected chunks — exactly the data-next-to-code
       traffic self-revalidation exists for (§3.6.2). *)
    mov_ri ecx 256;
    mov_ri ebx 0;
    mov_rr edx ebp;
    label "q_pal";
    mov_rr eax ebx;
    and_ri eax 63;
    mov_mr (m ~index:(eax, 4) palette_addr) edx;
    add_ri edx 3;
    and_ri edx 0x7f;
    inc_r ebx;
    dec_r ecx;
    jne "q_pal";
    (* ... and patch the base lighting constant into the code itself
       (Doom-style stylized SMC, §3.6.4) *)
    mov_rr edx ebp;
    shl_ri edx 3;
    and_ri edx 0x7f;
    mov_rl edi "q_light_insn";
    mov_mr (mbd edi add_eax_imm_off) edx;
    (* render 2048 texels with the patched constant + palette *)
    mov_ri esi world;
    mov_ri edi offscreen;
    mov_ri ecx 2048;
    label "q_texel";
    mov_rm eax (mb esi);
    label "q_light_insn";
    add_ri eax 0; (* lighting constant, patched per frame *)
    (* palette lookup: code-adjacent data read every texel *)
    mov_rr ebx eax;
    and_ri ebx 63;
    add_rm eax (m ~index:(ebx, 4) palette_addr);
    (* fixed-point modulate: v = v * 200 >> 8, saturate to 255 *)
    imul_rr eax (-1); (* placeholder replaced below *)
    sar_ri eax 8;
    cmp_ri eax 255;
    jbe "q_noclip";
    mov_ri eax 255;
    label "q_noclip";
    mov_mr (mb edi) eax;
    add_ri esi 4;
    add_ri edi 4;
    dec_r ecx;
    jne "q_texel";
    (* blit offscreen -> framebuffer (memory-mapped I/O) *)
    mov_ri esi offscreen;
    mov_ri edi Machine.Platform.fb_base;
    mov_ri ecx 2048;
    label "q_blit";
    mov_rm eax (mb esi);
    mov_mr (mb edi) eax;
    add_ri esi 4;
    add_ri edi 4;
    dec_r ecx;
    jne "q_blit";
    (* end of frame *)
    mov_ri edx Machine.Platform.frame_port;
    mov_ri eax 1;
    out32_dx;
    dec_r ebp;
    jne "q_frame";
    (* checksum a few pixels *)
    mov_rm eax (m (offscreen + 256));
    add_mr (m 0x5100) eax;
    mov_rm eax (m 0x5100);
    hlt;
    (* the palette sits right here, after the final code bytes and
       unaligned: it shares 64-byte protection chunks with code *)
    label "q_palette";
    dd (List.init 64 (fun i -> i));
  ]

let fix_quake items =
  List.concat_map
    (fun it ->
      match it with
      | I (X86.Insn.Imul2 (0, _)) ->
          (* v * 200 via shifts/adds: v*200 = v*128 + v*64 + v*8 *)
          [
            mov_rr ebx eax;
            shl_ri eax 7;
            mov_rr edx ebx;
            shl_ri edx 6;
            add_rr eax edx;
            shl_ri ebx 3;
            add_rr eax ebx;
          ]
      | it -> [ it ])
    items

let quake =
  (* two-pass: find the palette's address, then wire it in *)
  let l1 = assemble ~base:0x10000 (fix_quake (quake_items 0)) in
  let palette = label_addr l1 "q_palette" in
  let listing = assemble ~base:0x10000 (fix_quake (quake_items palette)) in
  Suite.make ~name:"Quake Demo2 (DOS)" ~entry:0x10000 ~max_insns:10_000_000
    listing

(* ------------------------------------------------------------------ *)
(* BLT driver: recurring SMC versions (§3.6.5)                         *)
(* ------------------------------------------------------------------ *)

(* [versions] distinct blit "operations" are installed round-robin by
   rewriting the blit instruction — both its ModRM digit (ADD vs XOR,
   a structural change stylized translations cannot absorb) and its
   immediate.  Recurring versions are what translation groups exist
   for (§3.6.5: the Windows/9X BLT driver uses up to 33 versions). *)
let blt_items ~versions ~installs ~pixels =
  [
    mov_mi (m 0x5100) 0;
    mov_ri ebp 0; (* install counter *)
    label "b_outer";
    (* version id = install mod versions *)
    mov_rr eax ebp;
    mov_ri edx 0;
    mov_ri ecx versions;
    div_r ecx; (* edx = version id *)
    lea edx (mbd edx 3); (* make the constant nonzero and distinct *)
    mov_rl edi "b_insn";
    (* opcode digit: ADD (/0 = 0xC0) for even versions, XOR (/6 = 0xF0)
       for odd ones *)
    mov_ri eax 0xc0;
    test_ri edx 1;
    je "b_even";
    mov_ri eax 0xf0;
    label "b_even";
    mov8_mr (mbd edi 1) X86.Regs.eax;
    mov_mr (mbd edi add_eax_imm_off) edx;
    (* run the blit *)
    mov_ri esi offscreen;
    mov_ri ecx pixels;
    mov_ri ebx 0;
    label "b_px";
    mov_rm eax (mb esi);
    label "b_insn";
    add_ri eax 0; (* the patched operation constant *)
    mov_mr (mb esi) eax;
    add_rr ebx eax;
    add_ri esi 4;
    dec_r ecx;
    jne "b_px";
    add_mr (m 0x5100) ebx;
    inc_r ebp;
    cmp_ri ebp installs;
    jne "b_outer";
    mov_rm eax (m 0x5100);
    hlt;
  ]

let blt_driver ?(versions = 8) ?(installs = 48) ?(pixels = 300) () =
  Suite.make
    ~name:(Fmt.str "BLT driver (%d versions)" versions)
    ~entry:0x10000 ~max_insns:3_000_000
    (assemble ~base:0x10000 (blt_items ~versions ~installs ~pixels))

let all = [ quake ]
