(** SPECcpu-like application kernels.

    Each mirrors the algorithmic character of its namesake from the
    paper's suite (Appendix A): memory-op density, branch behaviour and
    arithmetic mix — the properties Figures 2 and 3 are sensitive to.
    Floating-point entries (tomcatv, ora, alvinn, mdljsp2) are built as
    fixed-point kernels because the ISA subset has no FPU; DESIGN.md
    documents the substitution (the reordering/alias phenomena under
    study live in the memory system, not the arithmetic unit). *)

open X86.Asm

let data = 0x200000
let data2 = 0x240000
let data3 = 0x280000

let fill ~label_prefix ~base ~words ~seed =
  [ mov_ri edi base; mov_ri ecx words; mov_ri esi seed ]
  @ [
      label (label_prefix ^ "_fill");
      mov_rr eax esi;
    ]
  @ [
      mov_ri ebx 1103515245;
      imul_rr esi ebx;
      add_ri esi 12345;
      mov_mr (mb edi) eax;
      add_ri edi 4;
      dec_r ecx;
      jne (label_prefix ^ "_fill");
    ]

let finish = [ mov_rm eax (m 0x5100); hlt ]
let acc v = add_mr (m 0x5100) v
let init = [ mov_mi (m 0x5100) 0 ]

let wrap ~name ?(max_insns = 3_000_000) items =
  Suite.make ~name ~entry:0x10000 ~max_insns
    (assemble ~base:0x10000 (init @ items @ finish))

(* ------------------------------------------------------------------ *)
(* 023.eqntott: bit-vector comparison & counting                       *)
(* ------------------------------------------------------------------ *)

let eqntott =
  wrap ~name:"023.eqntott (Linux)"
    (fill ~label_prefix:"eq" ~base:data ~words:4096 ~seed:7
    @ fill ~label_prefix:"eq2" ~base:data2 ~words:4096 ~seed:99
    @ [
        (* xor-compare the two bit vectors, popcount-ish accumulate *)
        mov_ri esi data;
        mov_ri edi data2;
        mov_ri ecx 4096;
        mov_ri ebx 0;
        label "cmp_loop";
        mov_rm eax (mb esi);
        xor_rm eax (mb edi);
        (* fold 32 -> 8 bit parity-count approximation *)
        mov_rr edx eax;
        shr_ri edx 16;
        xor_rr eax edx;
        mov_rr edx eax;
        shr_ri edx 8;
        xor_rr eax edx;
        and_ri eax 0xff;
        add_rr ebx eax;
        add_ri esi 4;
        add_ri edi 4;
        dec_r ecx;
        jne "cmp_loop";
        acc ebx;
        (* a branchy ordering pass over a small window, bubble style *)
        mov_ri edx 40;
        label "sort_outer";
        mov_ri esi data;
        mov_ri ecx 255;
        label "sort_inner";
        mov_rm eax (mb esi);
        mov_rm ebx (mbd esi 4);
        cmp_rr eax ebx;
        jbe "no_swap";
        mov_mr (mb esi) ebx;
        mov_mr (mbd esi 4) eax;
        label "no_swap";
        add_ri esi 4;
        dec_r ecx;
        jne "sort_inner";
        dec_r edx;
        jne "sort_outer";
        mov_rm ebx (m data);
        acc ebx;
      ])

(* ------------------------------------------------------------------ *)
(* 026.compress: LZW-style hashing compressor inner loop               *)
(* ------------------------------------------------------------------ *)

let compress =
  wrap ~name:"026.compress (Linux)"
    (fill ~label_prefix:"cp" ~base:data ~words:8192 ~seed:1234
    @ [
        (* hash table at data2 (16K entries), input bytes at data *)
        mov_ri edi data2;
        mov_ri ecx 16384;
        mov_ri eax 0;
        label "clr";
        mov_mr (mb edi) eax;
        add_ri edi 4;
        dec_r ecx;
        jne "clr";
        mov_ri esi data;
        mov_ri edi (data2 + 0x10000); (* output code stream *)
        mov_ri ecx 32768; (* input bytes *)
        mov_ri ebx 0; (* prefix code *)
        mov_ri ebp 0; (* emitted-code accumulator *)
        label "lzw";
        (* emit the pending prefix first: the iteration's input and
           probe loads then issue after this store (different bases) *)
        mov_mr (mb edi) ebx;
        add_ri edi 4;
        movzx eax (mb esi);
        inc_r esi;
        (* hash = ((byte << 8) ^ prefix) & 0x3fff *)
        shl_ri eax 8;
        xor_rr eax ebx;
        and_ri eax 0x3fff;
        (* probe *)
        mov_rm edx (m ~index:(eax, 4) data2);
        test_rr edx edx;
        je "miss";
        (* hit: prefix = stored code *)
        mov_rr ebx edx;
        jmp "next";
        label "miss";
        (* store new code, emit prefix *)
        mov_rr edx ebx;
        shl_ri edx 1;
        or_ri edx 1;
        mov_mr (m ~index:(eax, 4) data2) edx;
        add_rr ebp ebx;
        movzx ebx (mbd esi (-1));
        label "next";
        dec_r ecx;
        jne "lzw";
        acc ebp;
      ])

(* ------------------------------------------------------------------ *)
(* 072.sc: spreadsheet recalculation with opcode dispatch              *)
(* ------------------------------------------------------------------ *)

let sc =
  wrap ~name:"072.sc (Linux)"
    (fill ~label_prefix:"sc" ~base:data ~words:2048 ~seed:5
    @ [
        (* build the dispatch table *)
        mov_rl eax "op_add";
        mov_mr (m data3) eax;
        mov_rl eax "op_double";
        mov_mr (m (data3 + 4)) eax;
        mov_rl eax "op_dec";
        mov_mr (m (data3 + 8)) eax;
        mov_rl eax "op_mix";
        mov_mr (m (data3 + 12)) eax;
        (* recalc passes *)
        mov_ri ebp 20; (* passes *)
        label "pass";
        mov_ri esi data;
        mov_ri ecx 2047;
        label "cell";
        mov_rm eax (mb esi); (* cell value *)
        mov_rr edx eax;
        and_ri edx 3; (* opcode from value *)
        jmp_m (m ~index:(edx, 4) data3);
        label "op_add";
        add_rm eax (mbd esi 4);
        jmp "store";
        label "op_double";
        shl_ri eax 1;
        jmp "store";
        label "op_dec";
        sub_ri eax 3;
        jmp "store";
        label "op_mix";
        xor_rm eax (mbd esi 4);
        rol_ri eax 5;
        label "store";
        mov_mr (mb esi) eax;
        add_ri esi 4;
        dec_r ecx;
        jne "cell";
        dec_r ebp;
        jne "pass";
        mov_rm ebx (m (data + 400));
        acc ebx;
      ])

(* ------------------------------------------------------------------ *)
(* 085.gcc: pointer-chasing over heap-like structures                  *)
(* ------------------------------------------------------------------ *)

let gcc =
  wrap ~name:"085.gcc (Linux)"
    [
      (* build a linked list of 2048 nodes with pseudo-random payloads;
         node: [next; value] (8 bytes) *)
      mov_ri edi data;
      mov_ri ecx 2048;
      mov_ri esi 31337;
      label "mk";
      lea eax (mbd edi 8);
      mov_mr (mb edi) eax; (* next = this + 8 *)
      mov_ri ebx 1103515245;
      imul_rr esi ebx;
      add_ri esi 12345;
      mov_mr (mbd edi 4) esi;
      add_ri edi 8;
      dec_r ecx;
      jne "mk";
      (* terminate *)
      mov_mi (m (data + (2047 * 8))) 0;
      (* walk repeatedly, conditionally rewriting payloads (branchy) *)
      mov_ri ebp 60;
      mov_ri ebx 0;
      label "walk_pass";
      mov_ri esi data;
      label "walk";
      mov_rm edx (mbd esi 4);
      test_ri edx 1;
      je "even";
      add_rr ebx edx;
      sar_ri edx 1;
      mov_mr (mbd esi 4) edx;
      jmp "step";
      label "even";
      xor_rr ebx edx;
      add_ri edx 7;
      mov_mr (mbd esi 4) edx;
      label "step";
      mov_rm esi (mb esi);
      test_rr esi esi;
      jne "walk";
      dec_r ebp;
      jne "walk_pass";
      acc ebx;
    ]

(* ------------------------------------------------------------------ *)
(* 047.tomcatv: fixed-point 1D/2D stencil sweeps                       *)
(* ------------------------------------------------------------------ *)

let tomcatv =
  wrap ~name:"047.tomcatv (Linux)"
    (fill ~label_prefix:"tc" ~base:data ~words:8192 ~seed:17
    @ [
        (* out-of-place stencil: reads via ESI (input mesh), writes via
           EDI (output mesh).  Each iteration stores point i and then
           loads point i+1's neighbourhood — store-then-load through
           different base registers, unprovable statically, exactly what
           the alias hardware exists for. *)
        mov_ri ebp 12; (* sweeps *)
        label "sweep";
        mov_ri esi (data + 4);
        mov_ri edi (data2 + 4);
        mov_ri ecx 4094;
        label "stencil";
        (* point i *)
        mov_rm eax (mbd esi (-4));
        mov_rm ebx (mb esi);
        shl_ri ebx 1;
        add_rr eax ebx;
        add_rm eax (mbd esi 4);
        sar_ri eax 2;
        mov_mr (mb edi) eax;
        (* point i+1: loads issued after the store above *)
        mov_rm eax (mb esi);
        mov_rm ebx (mbd esi 4);
        shl_ri ebx 1;
        add_rr eax ebx;
        add_rm eax (mbd esi 8);
        sar_ri eax 2;
        mov_mr (mbd edi 4) eax;
        add_ri esi 8;
        add_ri edi 8;
        dec_r ecx;
        jne "stencil";
        (* ping-pong the meshes *)
        mov_ri esi (data2 + 4);
        mov_ri edi (data + 4);
        mov_ri ecx 4094;
        label "stencil2";
        mov_rm eax (mbd esi (-4));
        add_rm eax (mb esi);
        mov_mr (mb edi) eax;
        mov_rm ebx (mbd esi 4);
        add_rm ebx (mbd esi 8);
        mov_mr (mbd edi 4) ebx;
        add_ri esi 8;
        add_ri edi 8;
        dec_r ecx;
        jne "stencil2";
        dec_r ebp;
        jne "sweep";
        mov_rm ebx (m (data + 4096));
        acc ebx;
      ])

(* ------------------------------------------------------------------ *)
(* 048.ora: Newton iteration (integer sqrt) per "ray"                  *)
(* ------------------------------------------------------------------ *)

let ora =
  wrap ~name:"048.ora (Linux)"
    [
      mov_ri ebp 6000; (* rays *)
      mov_ri ebx 0;
      mov_ri esi 12345;
      label "ray";
      (* next pseudo-random radicand in edi *)
      mov_ri eax 1103515245;
      imul_rr esi eax;
      add_ri esi 12345;
      mov_rr edi esi;
      and_ri edi 0xffffff;
      or_ri edi 1;
      (* Newton: x' = (x + n/x) / 2, 8 iterations *)
      mov_ri ecx 8;
      mov_rr edx edi;
      shr_ri edx 12;
      or_ri edx 1; (* initial guess in edx *)
      label "newton";
      push_r ecx;
      mov_rr ecx edx; (* divisor = x *)
      mov_rr eax edi;
      mov_ri edx 0;
      div_r ecx; (* eax = n / x *)
      add_rr eax ecx;
      shr_ri eax 1;
      mov_rr edx eax;
      pop_r ecx;
      dec_r ecx;
      jne "newton";
      add_rr ebx edx;
      dec_r ebp;
      jne "ray";
      acc ebx;
    ]

(* ------------------------------------------------------------------ *)
(* 052.alvinn: dot products with saturating activation                 *)
(* ------------------------------------------------------------------ *)

let alvinn =
  wrap ~name:"052.alvinn (Linux)"
    (fill ~label_prefix:"av_w" ~base:data ~words:4096 ~seed:3
    @ fill ~label_prefix:"av_x" ~base:data2 ~words:4096 ~seed:11
    @ [
        mov_ri ebp 40; (* output neurons *)
        mov_ri ebx 0;
        label "neuron";
        mov_ri esi data;
        mov_ri edi data2;
        mov_ri ecx 2048;
        mov_ri edx 0;
        label "dot";
        mov_rm eax (mb esi);
        sar_ri eax 16; (* keep products small *)
        imul_rm eax (mb edi);
        sar_ri eax 16;
        add_rr edx eax;
        (* activation trace written back through the input pointer's
           sibling array: store-then-next-load, the alias-hw pattern *)
        mov_mr (mbd edi 0x40000) edx;
        add_ri esi 4;
        add_ri edi 4;
        dec_r ecx;
        jne "dot";
        (* saturating activation *)
        cmp_ri edx 1000;
        jle "no_sat_hi";
        mov_ri edx 1000;
        label "no_sat_hi";
        cmp_ri edx (-1000);
        jge "no_sat_lo";
        mov_ri edx (-1000);
        label "no_sat_lo";
        add_rr ebx edx;
        dec_r ebp;
        jne "neuron";
        acc ebx;
      ])

(* ------------------------------------------------------------------ *)
(* 077.mdljsp2: pairwise interactions with table lookup                *)
(* ------------------------------------------------------------------ *)

let mdljsp2 =
  wrap ~name:"077.mdljsp2 (Linux)"
    (fill ~label_prefix:"md_x" ~base:data ~words:512 ~seed:23
    @ fill ~label_prefix:"md_f" ~base:data3 ~words:1024 ~seed:41
    @ [
        mov_ri ebp 30; (* time steps *)
        mov_ri ebx 0;
        label "mdstep";
        mov_ri esi 0; (* i *)
        label "ii";
        mov_ri edi 0; (* j *)
        label "jj";
        mov_rm eax (m ~index:(esi, 4) data);
        sub_rm eax (m ~index:(edi, 4) data);
        sar_ri eax 20;
        imul_rr eax eax; (* dx^2, small *)
        and_ri eax 0x3ff;
        mov_rm edx (m ~index:(eax, 4) data3); (* force table *)
        add_rr ebx edx;
        (* accumulate the force on particle i; the next pair's position
           loads issue after this store *)
        mov_mr (m ~index:(esi, 4) data2) ebx;
        inc_r edi;
        cmp_ri edi 64;
        jne "jj";
        inc_r esi;
        cmp_ri esi 64;
        jne "ii";
        dec_r ebp;
        jne "mdstep";
        acc ebx;
      ])

(* ------------------------------------------------------------------ *)
(* crafty (SPECint2000): bitboard shifting and counting                *)
(* ------------------------------------------------------------------ *)

let crafty =
  wrap ~name:"crafty (Win98)"
    [
      mov_ri ebp 12000;
      mov_ri esi 0x9e3779b9; (* "board" low word *)
      mov_ri edi 0x7f4a7c15;
      mov_ri ebx 0;
      label "ply";
      (* generate "moves": rotate boards, mask, popcount *)
      rol_ri esi 7;
      ror_ri edi 11;
      mov_rr eax esi;
      and_rr eax edi;
      mov_rr edx eax;
      label "pcbit";
      test_rr edx edx;
      je "pcdone";
      mov_rr ecx edx;
      and_ri ecx 1;
      add_rr ebx ecx;
      shr_ri edx 1;
      jmp "pcbit";
      label "pcdone";
      dec_r ebp;
      jne "ply";
      acc ebx;
    ]

(* ------------------------------------------------------------------ *)
(* espresso: bit-set cover operations over cube lists                  *)
(* ------------------------------------------------------------------ *)

let espresso =
  wrap ~name:"espresso (Linux)"
    (fill ~label_prefix:"es" ~base:data ~words:2048 ~seed:13
    @ [
        (* repeated cover pass: for each cube pair, test containment by
           bit operations; count absorbed cubes *)
        mov_ri ebp 25;
        mov_ri ebx 0;
        label "es_pass";
        mov_ri esi data;
        mov_ri ecx 1024;
        label "es_cube";
        mov_rm eax (mb esi);
        mov_rm edx (mbd esi 4096); (* cube from the second list *)
        (* containment: a & b == a *)
        and_rr edx eax;
        cmp_rr edx eax;
        jne "es_not";
        inc_r ebx;
        label "es_not";
        (* sharpen: a & ~b written back to a third list *)
        mov_rm edx (mbd esi 4096);
        not_r edx;
        and_rr edx eax;
        mov_mr (mbd esi 8192) edx;
        add_ri esi 4;
        dec_r ecx;
        jne "es_cube";
        dec_r ebp;
        jne "es_pass";
        acc ebx;
      ])

(* ------------------------------------------------------------------ *)
(* li (lisp interpreter): cons-cell allocation and list traversal      *)
(* ------------------------------------------------------------------ *)

let li =
  wrap ~name:"li (Linux)"
    [
      (* bump allocator in edi; build 512-long lists 40 times, walking
         each afterwards — allocation-heavy pointer code *)
      mov_ri ebp 40;
      mov_ri ebx 0;
      label "li_round";
      mov_ri edi data; (* reset the "heap" *)
      mov_ri esi 0; (* nil *)
      mov_ri ecx 512;
      label "li_cons";
      (* car = ecx, cdr = esi *)
      mov_mr (mb edi) ecx;
      mov_mr (mbd edi 4) esi;
      mov_rr esi edi;
      add_ri edi 8;
      dec_r ecx;
      jne "li_cons";
      (* walk: sum the cars *)
      label "li_walk";
      add_rm ebx (mb esi);
      mov_rm esi (mbd esi 4);
      test_rr esi esi;
      jne "li_walk";
      dec_r ebp;
      jne "li_round";
      acc ebx;
    ]

(* ------------------------------------------------------------------ *)
(* su2cor / wave5 / spice2g6: fixed-point numeric sweeps               *)
(* ------------------------------------------------------------------ *)

let su2cor =
  wrap ~name:"su2cor (Linux)"
    (fill ~label_prefix:"su" ~base:data ~words:4096 ~seed:29
    @ [
        (* gauge-field-style update: out[i] = (a[i]*3 + a[i+stride]) >> 2
           with a long stride, written through a second pointer *)
        mov_ri ebp 20;
        label "su_sweep";
        mov_ri esi data;
        mov_ri edi data2;
        mov_ri ecx 2048;
        label "su_site";
        mov_rm eax (mb esi);
        mov_rr edx eax;
        shl_ri eax 1;
        add_rr eax edx;
        add_rm eax (mbd esi 8192); (* + a[i + 2048 words] *)
        sar_ri eax 2;
        mov_mr (mb edi) eax;
        mov_rm edx (mbd esi 4); (* next site load after the store *)
        add_rr eax edx;
        mov_mr (mbd edi 4) eax;
        add_ri esi 8;
        add_ri edi 8;
        dec_r ecx;
        jne "su_site";
        dec_r ebp;
        jne "su_sweep";
        mov_rm ebx (m data2);
        acc ebx;
      ])

let wave5 =
  wrap ~name:"wave5 (Linux)"
    (fill ~label_prefix:"wv" ~base:data ~words:4096 ~seed:37
    @ [
        (* particle push: position += velocity (two parallel arrays),
           periodic wrap by masking *)
        mov_ri ebp 30;
        label "wv_step";
        mov_ri esi data; (* positions *)
        mov_ri edi data2; (* velocities live at data+16K; out at data2 *)
        mov_ri ecx 4096;
        label "wv_part";
        mov_rm eax (mb esi);
        add_rm eax (mbd esi 16384);
        and_ri eax 0xffffff;
        mov_mr (mb edi) eax;
        add_ri esi 4;
        add_ri edi 4;
        dec_r ecx;
        jne "wv_part";
        dec_r ebp;
        jne "wv_step";
        mov_rm ebx (m (data2 + 64));
        acc ebx;
      ])

let spice2g6 =
  wrap ~name:"spice2g6 (Linux)"
    (fill ~label_prefix:"sp" ~base:data ~words:1024 ~seed:41
    @ [
        (* sparse-matrix-vector style: indices in one array select
           elements of another; irregular loads *)
        mov_ri ebp 60;
        mov_ri ebx 0;
        label "sp_iter";
        mov_ri esi data;
        mov_ri ecx 1024;
        label "sp_elt";
        mov_rm eax (mb esi);
        and_ri eax 0x3ff;
        mov_rm edx (m ~index:(eax, 4) data2); (* indirect load *)
        add_rr ebx edx;
        (* stamp the visit into the node (store then next index load) *)
        mov_mr (m ~index:(eax, 4) data2) ebx;
        add_ri esi 4;
        dec_r ecx;
        jne "sp_elt";
        dec_r ebp;
        jne "sp_iter";
        acc ebx;
      ])

let all =
  [
    eqntott; compress; sc; gcc; tomcatv; ora; alvinn; mdljsp2; crafty;
    espresso; li; su2cor; wave5; spice2g6;
  ]
