(** Execution profiling gathered by the interpreter (paper §2: the
    interpreter collects "data on execution frequency, branch
    directions, and memory-mapped I/O operations"). *)

type branch_bias = { mutable taken : int; mutable not_taken : int }

type t = {
  exec_counts : (int, int ref) Hashtbl.t;  (** per-EIP execution counts *)
  branches : (int, branch_bias) Hashtbl.t;  (** per-branch direction data *)
  mmio_insns : (int, unit) Hashtbl.t;
      (** instructions observed touching memory-mapped I/O *)
}

let create () =
  {
    exec_counts = Hashtbl.create 1024;
    branches = Hashtbl.create 256;
    mmio_insns = Hashtbl.create 64;
  }

(** Count one interpreted execution of the instruction at [eip];
    returns the updated count. *)
let bump t eip =
  match Hashtbl.find_opt t.exec_counts eip with
  | Some r ->
      incr r;
      !r
  | None ->
      Hashtbl.add t.exec_counts eip (ref 1);
      1

let count t eip =
  match Hashtbl.find_opt t.exec_counts eip with Some r -> !r | None -> 0

(** Forget the count (after translating, so invalidation restarts the
    threshold climb). *)
let reset_count t eip = Hashtbl.remove t.exec_counts eip

let note_branch t eip ~taken =
  let b =
    match Hashtbl.find_opt t.branches eip with
    | Some b -> b
    | None ->
        let b = { taken = 0; not_taken = 0 } in
        Hashtbl.add t.branches eip b;
        b
  in
  if taken then b.taken <- b.taken + 1 else b.not_taken <- b.not_taken + 1

(** Predicted direction for the conditional branch at [eip]; [None]
    when there is no clear bias. *)
let bias t eip =
  match Hashtbl.find_opt t.branches eip with
  | None -> None
  | Some { taken; not_taken } ->
      if taken >= 3 * (not_taken + 1) then Some true
      else if not_taken >= 3 * (taken + 1) then Some false
      else None

let note_mmio t eip = Hashtbl.replace t.mmio_insns eip ()
let is_mmio_insn t eip = Hashtbl.mem t.mmio_insns eip
