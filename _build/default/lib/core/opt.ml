(** IR optimization passes.

    The translator "performs a number of traditional and Crusoe-specific
    optimizations" (paper §2).  Implemented here, all on the linear IR:

    - dead-condition-code elimination: x86 sets flags on almost every
      instruction, but most flag results are overwritten before use;
      retargeting dead flag writes to a scratch register removes the
      serial dependence chain through EFLAGS that would otherwise kill
      VLIW parallelism (Crusoe-specific, enabled by the [fw] field);
    - copy propagation and constant propagation/folding;
    - dead code elimination (pure ALU results only — memory operations
      keep their architectural fault side effects);
    - redundant-load elimination and store-to-load forwarding within
      extended basic blocks.

    Liveness is computed by iterative dataflow over the block graph; a
    [Commit] observes all guest state, which is what makes interior
    flag results deletable while every exit still materializes precise
    x86 flags. *)

module A = Vliw.Atom
module ISet = Set.Make (Int)

type block = {
  label : Ir.label option;
  mutable ops : Ir.op array;
  mutable succs : int list;  (** block indices *)
  mutable live_in : ISet.t;
  mutable live_out : ISet.t;
}

let guest_regs =
  List.init Vliw.Abi.shadow_count (fun i -> i) |> ISet.of_list

(* Commit makes all shadowed guest state observable. *)
let op_uses (o : Ir.op) =
  match o.Ir.atom with
  | A.Commit _ -> guest_regs
  | a -> ISet.of_list (A.uses a)

let op_defs (o : Ir.op) = ISet.of_list (A.defs o.Ir.atom)

(* Backward transfer; [A.uses] is flags-precise, so this is exact. *)
let live_before (o : Ir.op) live =
  ISet.union (op_uses o) (ISet.diff live (op_defs o))

(* ------------------------------------------------------------------ *)
(* Block construction                                                  *)
(* ------------------------------------------------------------------ *)

let build_blocks items =
  (* leaders: labels and the op following a branch *)
  let blocks = ref [] in
  let cur = ref [] and cur_label = ref None in
  let flush () =
    if !cur <> [] || !cur_label <> None then begin
      blocks :=
        {
          label = !cur_label;
          ops = Array.of_list (List.rev !cur);
          succs = [];
          live_in = ISet.empty;
          live_out = ISet.empty;
        }
        :: !blocks;
      cur := [];
      cur_label := None
    end
  in
  List.iter
    (fun item ->
      match item with
      | Ir.Lbl l ->
          flush ();
          cur_label := Some l
      | Ir.Op o ->
          cur := o :: !cur;
          if A.is_branch o.Ir.atom then flush ())
    items;
  flush ();
  let blocks = Array.of_list (List.rev !blocks) in
  (* successor edges *)
  let label_block = Hashtbl.create 16 in
  Array.iteri
    (fun i b -> match b.label with Some l -> Hashtbl.add label_block l i | None -> ())
    blocks;
  Array.iteri
    (fun i b ->
      let n = Array.length b.ops in
      let last = if n = 0 then None else Some b.ops.(n - 1).Ir.atom in
      let fallthrough =
        if i + 1 < Array.length blocks then [ i + 1 ] else []
      in
      b.succs <-
        (match last with
        | Some (A.Br { target }) -> [ Hashtbl.find label_block target ]
        | Some (A.BrCond { target; _ }) | Some (A.BrCmp { target; _ }) ->
            Hashtbl.find label_block target :: fallthrough
        | Some (A.Exit _) -> []
        | _ -> fallthrough))
    blocks;
  blocks

(* ------------------------------------------------------------------ *)
(* Liveness                                                            *)
(* ------------------------------------------------------------------ *)

let compute_liveness blocks =
  let changed = ref true in
  while !changed do
    changed := false;
    for i = Array.length blocks - 1 downto 0 do
      let b = blocks.(i) in
      let out =
        List.fold_left
          (fun acc s -> ISet.union acc blocks.(s).live_in)
          ISet.empty b.succs
      in
      let inn = Array.fold_right live_before b.ops out in
      if not (ISet.equal out b.live_out && ISet.equal inn b.live_in) then begin
        b.live_out <- out;
        b.live_in <- inn;
        changed := true
      end
    done
  done

(* ------------------------------------------------------------------ *)
(* Pass 1: dead flag retargeting + DCE                                 *)
(* ------------------------------------------------------------------ *)

(* Pure ops whose results can be discarded when dead.  Memory, control,
   commits, and DivX (faulting) must stay. *)
let is_pure = function
  | A.Nop | A.MovI _ | A.MovR _ | A.Alu _ | A.AluX _ | A.MulX _ | A.SetCond _
  | A.ExtField _ | A.InsField _ ->
      true
  | _ -> false

let dce_and_flags (_ir : Ir.t) blocks =
  let removed = ref 0 and retargeted = ref 0 in
  Array.iter
    (fun b ->
      let live = ref b.live_out in
      let keep = ref [] in
      for k = Array.length b.ops - 1 downto 0 do
        let o = b.ops.(k) in
        let defs = op_defs o in
        let any_live = ISet.exists (fun r -> ISet.mem r !live) defs in
        if (not any_live) && is_pure o.Ir.atom && not (ISet.is_empty defs)
        then incr removed (* drop the op *)
        else begin
          (* dead condition codes: drop the flags write entirely, and
             the flags read too unless the *result* consumes flags
             (adc/sbb).  This removes the serial EFLAGS chain between
             consecutive ALU operations. *)
          (match o.Ir.atom with
          | A.AluX ({ fw; fr; op; _ } as r)
            when fw = Vliw.Abi.eflags
                 && (not (ISet.mem Vliw.Abi.eflags !live))
                 && op <> A.XNot ->
              let needs_fr = op = A.XAdc || op = A.XSbb in
              o.Ir.atom <-
                A.AluX
                  { r with fw = A.no_flags;
                    fr = (if needs_fr then fr else A.no_flags) };
              incr retargeted
          | A.MulX ({ fw; _ } as r)
            when fw = Vliw.Abi.eflags && not (ISet.mem Vliw.Abi.eflags !live) ->
              o.Ir.atom <- A.MulX { r with fw = A.no_flags; fr = A.no_flags };
              incr retargeted
          | _ -> ());
          keep := o :: !keep;
          live := live_before o !live
        end
      done;
      b.ops <- Array.of_list !keep)
    blocks;
  (!removed, !retargeted)

(* ------------------------------------------------------------------ *)
(* Pass 2: copy + constant propagation (per block)                     *)
(* ------------------------------------------------------------------ *)

let subst_src copies s =
  match s with
  | A.R r -> ( match Hashtbl.find_opt copies r with Some s' -> s' | None -> s)
  | A.I _ -> s

let subst_reg copies r =
  match Hashtbl.find_opt copies r with Some (A.R r') -> r' | _ -> r

(* Substitute into an op's sources only.  Register-valued positions
   (Load/Store base, DivX hi/lo, BrCmp a, ...) only accept register
   substitutions. *)
let substitute copies (o : Ir.op) =
  let s = subst_src copies and r = subst_reg copies in
  o.Ir.atom <-
    (match o.Ir.atom with
    | A.MovR { rd; rs } -> (
        match Hashtbl.find_opt copies rs with
        | Some (A.I imm) -> A.MovI { rd; imm }
        | Some (A.R rs') -> A.MovR { rd; rs = rs' }
        | None -> A.MovR { rd; rs })
    | A.Alu a -> A.Alu { a with a = r a.a; b = s a.b }
    | A.AluX a -> A.AluX { a with a = s a.a; b = s a.b }
    | A.MulX a -> A.MulX { a with a = s a.a; b = s a.b }
    | A.DivX a -> A.DivX { a with hi = r a.hi; lo = r a.lo; divisor = s a.divisor }
    | A.ExtField a -> A.ExtField { a with rs = r a.rs }
    | A.InsField a -> A.InsField { a with rs = r a.rs }
    | A.Load a -> A.Load { a with base = r a.base }
    | A.Store a -> A.Store { a with rs = s a.rs; base = r a.base }
    | A.BrCmp a -> A.BrCmp { a with a = r a.a; b = s a.b }
    | atom -> atom)

let mask32 v = v land 0xffffffff
let sext32 v = if v land 0x80000000 <> 0 then v - 0x100000000 else v

let fold_alu op a b =
  match op with
  | A.HAdd -> mask32 (a + b)
  | A.HSub -> mask32 (a - b)
  | A.HAnd -> a land b
  | A.HOr -> a lor b
  | A.HXor -> a lxor b
  | A.HShl -> mask32 (a lsl (b land 31))
  | A.HShr -> a lsr (b land 31)
  | A.HSar -> mask32 (sext32 a asr (b land 31))
  | A.HMul -> mask32 (a * b)

let copy_const_prop blocks =
  let folded = ref 0 in
  Array.iter
    (fun b ->
      let copies : (int, A.src) Hashtbl.t = Hashtbl.create 32 in
      let kill r =
        Hashtbl.remove copies r;
        (* drop mappings whose source was just redefined *)
        let stale =
          Hashtbl.fold
            (fun k v acc -> if v = A.R r then k :: acc else acc)
            copies []
        in
        List.iter (Hashtbl.remove copies) stale
      in
      Array.iter
        (fun (o : Ir.op) ->
          substitute copies o;
          (* fold a fully-constant host ALU op *)
          (match o.Ir.atom with
          | A.Alu { op; rd; a; b = A.I bi } -> (
              match Hashtbl.find_opt copies a with
              | Some (A.I ai) ->
                  o.Ir.atom <- A.MovI { rd; imm = fold_alu op ai bi };
                  incr folded
              | _ -> ())
          | _ -> ());
          List.iter kill (A.defs o.Ir.atom);
          (* record new copy facts (temps only as keys) *)
          match o.Ir.atom with
          | A.MovI { rd; imm } when Ir.is_vreg rd ->
              Hashtbl.replace copies rd (A.I imm)
          | A.MovR { rd; rs } when Ir.is_vreg rd ->
              Hashtbl.replace copies rd (A.R rs)
          | _ -> ())
        b.ops)
    blocks;
  !folded

(* ------------------------------------------------------------------ *)
(* Pass 3: redundant loads & store-to-load forwarding (per block)      *)
(* ------------------------------------------------------------------ *)

let redundant_loads blocks =
  let eliminated = ref 0 in
  Array.iter
    (fun b ->
      (* (base reg, disp, size) -> register currently holding the value;
         base keys are invalidated when the base register is redefined,
         everything memory-derived dies at stores/commits *)
      let avail : (int * int * int, int) Hashtbl.t = Hashtbl.create 16 in
      let kill_reg r =
        let stale =
          Hashtbl.fold
            (fun ((base, _, _) as k) v acc ->
              if base = r || v = r then k :: acc else acc)
            avail []
        in
        List.iter (Hashtbl.remove avail) stale
      in
      Array.iter
        (fun (o : Ir.op) ->
          match o.Ir.atom with
          | A.Load { rd; base; disp; size; spec = false; protect = None; _ }
            -> (
              match Hashtbl.find_opt avail (base, disp, size) with
              | Some r when r <> rd ->
                  o.Ir.atom <- A.MovR { rd; rs = r };
                  incr eliminated;
                  List.iter kill_reg (A.defs o.Ir.atom);
                  Hashtbl.replace avail (base, disp, size) rd
              | _ ->
                  List.iter kill_reg (A.defs o.Ir.atom);
                  (* a load into its own base register invalidates the key *)
                  if rd <> base then Hashtbl.replace avail (base, disp, size) rd)
          | A.Store { rs; base; disp; size; _ } -> (
              (* conservative: a store kills all remembered values,
                 then forwards its own *)
              Hashtbl.reset avail;
              match rs with
              | A.R r -> Hashtbl.replace avail (base, disp, size) r
              | A.I _ -> ())
          | A.Commit _ -> Hashtbl.reset avail
          | atom -> List.iter kill_reg (A.defs atom))
        b.ops)
    blocks;
  !eliminated

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

type result = {
  items : Ir.item list;
  removed : int;
  flags_retargeted : int;
  folded : int;
  loads_eliminated : int;
}

let flatten blocks =
  Array.to_list blocks
  |> List.concat_map (fun b ->
         (match b.label with Some l -> [ Ir.Lbl l ] | None -> [])
         @ (Array.to_list b.ops |> List.map (fun o -> Ir.Op o)))

(** Run the pass pipeline over lowered IR items. *)
let run (ir : Ir.t) items =
  let blocks = build_blocks items in
  let folded = copy_const_prop blocks in
  let loads_eliminated = redundant_loads blocks in
  (* propagate copies introduced by load elimination *)
  let _ = copy_const_prop blocks in
  compute_liveness blocks;
  let removed, flags_retargeted = dce_and_flags ir blocks in
  (* removal may make more code dead; one more round is cheap *)
  compute_liveness blocks;
  let removed2, retarg2 = dce_and_flags ir blocks in
  {
    items = flatten blocks;
    removed = removed + removed2;
    flags_retargeted = flags_retargeted + retarg2;
    folded;
    loads_eliminated;
  }
