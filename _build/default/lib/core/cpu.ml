(** Guest CPU state, held in the VLIW register file.

    There is a single source of truth for x86 architectural state: the
    dedicated (shadowed) native registers defined by {!Vliw.Abi}.  The
    interpreter manipulates the working copies and commits after every
    instruction; translations run against the same registers and commit
    at translation exits; rollback restores the last committed state.

    The interrupt table base lives CMS-side: LIDT is interpreter-only,
    so it can never change inside a translation window and needs no
    shadowing. *)

exception Panic of string
(** unrecoverable emulation condition (e.g. fault while delivering a
    fault — a real CPU would triple-fault and reset) *)

type t = {
  exec : Vliw.Exec.t;
  plat : Machine.Platform.t;
  mutable idt_base : int;
  mutable halted : bool;
  mutable iflag : bool;
      (** the EFLAGS.IF bit.  Kept CMS-side, like the IDT base: every
          instruction that can change it is interpreter-only, so it is
          constant within any translation window — which is what lets
          the native flags register hold pure condition codes and makes
          dead-condition-code elimination sound *)
}

let create plat ~(cfg : Config.t) =
  let exec =
    Vliw.Exec.create ~sbuf_capacity:cfg.Config.sbuf_capacity
      ~alias_slots:cfg.Config.alias_slots plat.Machine.Platform.mem
  in
  exec.Vliw.Exec.validate <- cfg.Config.validate_molecules;
  exec.Vliw.Exec.enforce_latency <- cfg.Config.enforce_latency;
  { exec; plat; idt_base = 0; halted = false; iflag = false }

let mem t = t.plat.Machine.Platform.mem
let bus t = (mem t).Machine.Mem.bus
let regs t = t.exec.Vliw.Exec.regs

(* Working-copy accessors (interpreter's view during an instruction). *)
let gpr t r = Vliw.Regfile.get (regs t) (Vliw.Abi.gpr r)
let set_gpr t r v = Vliw.Regfile.set (regs t) (Vliw.Abi.gpr r) v
let eip t = Vliw.Regfile.get (regs t) Vliw.Abi.eip
let set_eip t v = Vliw.Regfile.set (regs t) Vliw.Abi.eip v
let eflags t = Vliw.Regfile.get (regs t) Vliw.Abi.eflags
let set_eflags t v = Vliw.Regfile.set (regs t) Vliw.Abi.eflags v

(* Committed state (the official x86 state between instructions). *)
let committed_eip t = Vliw.Regfile.get_committed (regs t) Vliw.Abi.eip
let committed_eflags t = Vliw.Regfile.get_committed (regs t) Vliw.Abi.eflags

let commit t = Vliw.Exec.commit t.exec
let rollback t = Vliw.Exec.rollback t.exec

(** Reset to a boot state: registers zero, flags initial, execution at
    [entry], interrupts disabled until the guest sets up an IDT. *)
let reset t ~entry ~stack =
  let r = regs t in
  for i = 0 to Vliw.Abi.num_regs - 1 do
    Vliw.Regfile.set_committed r i 0
  done;
  Vliw.Regfile.set_committed r (Vliw.Abi.gpr X86.Regs.esp) stack;
  Vliw.Regfile.set_committed r Vliw.Abi.eip entry;
  Vliw.Regfile.set_committed r Vliw.Abi.eflags X86.Flags.initial;
  t.halted <- false;
  t.idt_base <- 0;
  t.iflag <- false

(* ------------------------------------------------------------------ *)
(* Exception / interrupt delivery                                      *)
(* ------------------------------------------------------------------ *)

(* All delivery work happens on a consistent (committed) state; any
   nested fault here is a double fault -> panic. *)
let push32 t v =
  let esp = (gpr t X86.Regs.esp - 4) land 0xffffffff in
  Machine.Mem.write (mem t) ~size:4 esp v;
  set_gpr t X86.Regs.esp esp

(** The full architectural EFLAGS value: condition codes from the
    native flags register plus the CMS-side system bits. *)
let arch_eflags t =
  committed_eflags t lor (if t.iflag then X86.Flags.if_mask else 0)

(** Deliver interrupt/exception [vector] through the guest IDT.  The
    committed EIP must already be the value x86 semantics require on the
    handler's stack (the faulting instruction for faults, the next
    instruction for traps and external interrupts). *)
let deliver t ~vector ~error_code =
  match
    let handler =
      Machine.Mem.read (mem t) ~size:4 ((t.idt_base + (vector * 4)) land 0xffffffff)
    in
    (* Simulator guard: a guest jumping through an uninstalled vector
       would wander into zeroed memory; fail loudly instead (real
       hardware would execute garbage — nothing useful to model). *)
    if handler = 0 then
      raise (Panic (Fmt.str "null handler for vector %d (IDT not set up?)" vector));
    push32 t (eflags t lor (if t.iflag then X86.Flags.if_mask else 0));
    push32 t (eip t);
    (match error_code with Some c -> push32 t c | None -> ());
    t.iflag <- false;
    set_eip t handler;
    t.halted <- false;
    commit t
  with
  | () -> ()
  | exception X86.Exn.Fault f ->
      raise
        (Panic
           (Fmt.str "double fault: %a while delivering vector %d" X86.Exn.pp f
              vector))

(** Deliver an architectural fault raised by the current instruction.
    The working state has already been rolled back to the instruction
    boundary, so EIP points at the faulting instruction, as x86
    requires. *)
let deliver_fault t (f : X86.Exn.fault) =
  deliver t ~vector:(X86.Exn.vector f) ~error_code:(X86.Exn.error_code f)

(** Are external interrupts deliverable right now? *)
let irq_deliverable t =
  t.iflag && Machine.Irq.has_pending t.plat.Machine.Platform.irq
