(** Translator intermediate representation.

    IR operations reuse the {!Vliw.Atom} vocabulary but with an open
    register space: numbers below [Vliw.Abi.tmp_base] are the dedicated
    guest-state registers; numbers from [vreg_base] up are virtual
    temporaries that register allocation later maps into the host
    temporary range.  Branch targets in IR atoms are *label ids*, and
    [Exit i] refers to the block's exit table.

    Each op carries the index of the x86 instruction it implements (for
    retired-instruction accounting at exits) and, for memory ops, a
    program-order sequence number the scheduler uses for reordering
    decisions and speculation marking. *)

type label = int

let vreg_base = 1024
let is_vreg r = r >= vreg_base
let is_guest r = r < Vliw.Abi.tmp_base

type op = {
  mutable atom : Vliw.Atom.t;
  x86_idx : int;
  mem_seq : int;  (** program order among memory ops; -1 for non-mem *)
  mutable base_ver : int;
      (** def-version of the base register at this op (memory ops only);
          used for static disambiguation *)
  mutable barrier : bool;
      (** scheduling barrier: a loop back-edge branch; nothing from the
          code after it may hoist above it (it would re-execute every
          iteration) *)
  mutable base_abs : int option;
      (** statically known absolute value of the base register, when the
          trace itself materialized it (e.g. absolute addressing);
          enables exact disambiguation — both disjointness and
          must-alias *)
}

type item = Op of op | Lbl of label

type t = {
  mutable items : item list;  (** reversed during construction *)
  mutable next_vreg : int;
  mutable next_label : int;
  mutable next_seq : int;
  mutable exits : Vliw.Code.exit list;  (** reversed *)
}

let create () =
  { items = []; next_vreg = vreg_base; next_label = 0; next_seq = 0; exits = [] }

let fresh_vreg t =
  let v = t.next_vreg in
  t.next_vreg <- v + 1;
  v

let fresh_label t =
  let l = t.next_label in
  t.next_label <- l + 1;
  l

let emit t ~x86_idx atom =
  let mem_seq =
    if Vliw.Atom.is_mem atom then begin
      let s = t.next_seq in
      t.next_seq <- s + 1;
      s
    end
    else -1
  in
  t.items <- Op { atom; x86_idx; mem_seq; base_ver = 0; barrier = false; base_abs = None } :: t.items

let emit_label t l = t.items <- Lbl l :: t.items

(** Register an exit; returns its index for [Atom.Exit]. *)
let add_exit t ~target ~kind ~x86_retired =
  let idx = List.length t.exits in
  t.exits <-
    { Vliw.Code.target; kind; x86_retired; chain = Vliw.Code.Unchained } :: t.exits;
  idx

let items t = List.rev t.items
let exits t = Array.of_list (List.rev t.exits)

let pp_item fmt = function
  | Op o -> Fmt.pf fmt "  [%d] %a" o.x86_idx Vliw.Atom.pp o.atom
  | Lbl l -> Fmt.pf fmt "L%d:" l

let pp fmt t =
  List.iter (fun i -> Fmt.pf fmt "%a@." pp_item i) (items t)
