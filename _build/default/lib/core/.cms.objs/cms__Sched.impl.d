lib/core/sched.ml: Array Fmt Hashtbl Ir List Option Queue Vliw
