lib/core/codegen.ml: Array Buffer Bytes Char Config Ir List Lower Machine Opt Option Policy Region Sched Vliw
