lib/core/tcache.ml: Bytes Hashtbl List Machine Policy Region Vliw
