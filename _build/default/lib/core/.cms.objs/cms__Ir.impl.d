lib/core/ir.ml: Array Fmt List Vliw
