lib/core/smc.ml: Adapt Array Bytes Codegen Config Hashtbl Int64 List Machine Option Policy Region Stats Tcache
