lib/core/region.ml: Array Hashtbl List Machine Option Policy Profile X86
