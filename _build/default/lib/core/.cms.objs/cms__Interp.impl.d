lib/core/interp.ml: Config Cpu Decode Exn Flags Insn Machine Profile Regs Stats X86
