lib/core/profile.ml: Hashtbl
