lib/core/cpu.ml: Config Fmt Machine Vliw X86
