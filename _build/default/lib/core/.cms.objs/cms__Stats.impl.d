lib/core/stats.ml: Fmt Vliw
