lib/core/engine.ml: Adapt Array Codegen Config Cpu Fmt Interp Machine Policy Profile Region Smc Stats Sys Tcache Vliw X86
