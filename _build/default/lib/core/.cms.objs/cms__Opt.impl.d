lib/core/opt.ml: Array Hashtbl Int Ir List Set Vliw
