lib/core/cms.ml: Adapt Codegen Config Cpu Engine Interp Ir Lower Machine Opt Policy Profile Region Sched Smc Stats Tcache Vliw
