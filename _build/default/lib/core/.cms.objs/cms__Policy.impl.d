lib/core/policy.ml: Config Fmt Int Set
