lib/core/lower.ml: Array Cond Insn Ir List Option Policy Region Regs Vliw X86
