lib/core/adapt.ml: Config Hashtbl Policy
