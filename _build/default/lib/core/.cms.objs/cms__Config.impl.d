lib/core/config.ml:
