(** Native (host-level) exceptions.

    These interrupt a translation and hand control to the CMS runtime;
    they are implementation artifacts the guest never sees directly.
    CMS responds with rollback + recovery (paper §3): interpreting the
    region decides whether a guarded x86 fault was genuine, and the
    other kinds drive adaptive retranslation. *)

type t =
  | X86_fault of X86.Exn.fault
      (** a guarded atom (load/store/div) hit an x86 fault condition;
          possibly speculative if the atom was reordered *)
  | Alias_violation of int  (** reordered memory access overlap; slot *)
  | Mmio_spec of int  (** speculative atom touched I/O space; paddr *)
  | Smc of Machine.Mem.smc_hit * int
      (** store hit a protected page; paddr *)
  | Sbuf_overflow  (** gated store buffer capacity exceeded *)

let pp fmt = function
  | X86_fault f -> Fmt.pf fmt "x86:%a" X86.Exn.pp f
  | Alias_violation s -> Fmt.pf fmt "alias(slot %d)" s
  | Mmio_spec p -> Fmt.pf fmt "mmio-spec(0x%x)" p
  | Smc (h, p) ->
      Fmt.pf fmt "smc(%s,0x%x)"
        (match h with
        | Machine.Mem.Page_level -> "page"
        | Fg_miss -> "fg-miss"
        | Fg_chunk -> "fg-chunk")
        p
  | Sbuf_overflow -> Fmt.string fmt "sbuf-overflow"

let to_string n = Fmt.str "%a" pp n
