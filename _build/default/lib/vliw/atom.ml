(** Native VLIW operations (atoms).

    Atoms are RISC-like operations issued in parallel inside a molecule.
    Following the paper, the native ISA is x86-flavoured where that pays:
    [AluX] atoms evaluate x86 arithmetic *and* x86 condition codes in one
    operation (the semantics are shared with the interpreter through
    [X86.Flags], so translation and interpretation agree bit-for-bit),
    and [ExtField]/[InsField] make 8-bit subregister accesses cheap —
    the paper notes exactly such atoms were added to the TM5800.

    Memory atoms carry the speculation metadata the hardware acts on:
    [spec] marks an access reordered with respect to the original x86
    program (it faults if it touches I/O space, §3.4); [protect] records
    the accessed range in an alias-hardware slot, and [check] is a
    bitmask of slots the access must not overlap (§3.5). *)

type reg = int

type src = R of reg | I of int

type host_op = HAdd | HSub | HAnd | HOr | HXor | HShl | HShr | HSar | HMul

(** x86-flavoured ALU operations; update the flags register like the
    corresponding x86 instruction. *)
type xop =
  | XAdd
  | XAdc
  | XSub
  | XSbb
  | XAnd
  | XOr
  | XXor
  | XShl
  | XShr
  | XSar
  | XRol
  | XRor
  | XInc
  | XDec
  | XNeg
  | XNot  (** no flags, kept here for uniform lowering *)
  | XTest  (** flags only *)
  | XCmp  (** flags only *)

(** Host compare conditions for [BrCmp]. *)
type cmp = Ceq | Cne | Cult | Cule | Cslt | Csle

(** Sentinel for [AluX]/[MulX] [fr]/[fw] fields: the operation neither
    reads nor writes the flags register.  The optimizer rewrites dead
    condition-code updates to this, breaking the serial dependence
    chain through EFLAGS that x86 semantics would otherwise impose on
    every ALU operation. *)
let no_flags = -1

(** Does an x86-flavoured ALU op's execution read the old flags?
    True when the result depends on CF (adc/sbb) or when the op
    partially preserves status bits into its flags output (inc/dec keep
    CF; rotates only touch CF/OF; shifts by a possibly-zero count leave
    flags unchanged).  Pure ops (add, sub, logic, test, cmp, neg, mul)
    fully overwrite the status field, so they read nothing — the
    property dead-condition-code elimination relies on.  (The system
    bits of EFLAGS, e.g. IF, live outside this register: they cannot
    change inside a translation.) *)
let xop_reads_flags op (b : src) =
  match op with
  | XAdc | XSbb | XInc | XDec -> true
  | XRol | XRor -> true
  | XShl | XShr | XSar -> (
      match b with I k -> k land 31 = 0 | R _ -> true)
  | XAdd | XSub | XAnd | XOr | XXor | XTest | XCmp | XNeg | XNot -> false

type t =
  | Nop
  | MovI of { rd : reg; imm : int }
  | MovR of { rd : reg; rs : reg }
  | Alu of { op : host_op; rd : reg; a : reg; b : src }
      (** plain host ALU op; does not touch x86 flags *)
  | AluX of {
      op : xop;
      size : X86.Flags.size;
      rd : reg option;  (** [None] for flags-only ops (test/cmp) *)
      a : src;
      b : src;
      fr : reg;  (** flags register input *)
      fw : reg;
          (** flags output target; normally [= fr], but retargeted to a
              dead scratch register when the optimizer proves the x86
              flags result dead (dead-condition-code elimination) *)
    }
  | MulX of {
      signed : bool;
      size : X86.Flags.size;
      rd_lo : reg;
      rd_hi : reg option;
      a : src;
      b : src;
      fr : reg;
      fw : reg;
    }
  | DivX of {
      signed : bool;
      size : X86.Flags.size;
      rd_q : reg;
      rd_r : reg;
      hi : reg;
      lo : reg;
      divisor : src;
    }  (** faults #DE like x86 *)
  | SetCond of { rd : reg; cond : X86.Cond.t; fr : reg }
  | ExtField of { rd : reg; rs : reg; shift : int; width : int; sign : bool }
  | InsField of { rd : reg; rs : reg; shift : int; width : int }
      (** rd = insert low [width] bits of [rs] into [rd] at [shift] *)
  | Load of {
      rd : reg;
      base : reg;
      disp : int;
      size : int;  (** bytes: 1 or 4 *)
      spec : bool;
      protect : int option;  (** alias slot to arm *)
      check : int;  (** alias slot mask to verify against *)
    }
  | Store of {
      rs : src;
      base : reg;
      disp : int;
      size : int;
      spec : bool;
      check : int;
    }
  | Br of { target : int }  (** molecule index within the code block *)
  | BrCond of { cond : X86.Cond.t; fr : reg; target : int }
  | BrCmp of { cmp : cmp; a : reg; b : src; target : int }
  | ArmRange of { slot : int; base : reg; disp : int; len : int }
      (** arm an alias slot over a whole byte range (used by
          self-checking translations to guard their own source bytes
          against their own stores, §3.6.3's use of the alias
          hardware) *)
  | Commit of int
      (** copy working -> shadow, drain the gated store buffer; the
          payload is the number of x86 instructions this commit retires
          (counted into [Perf.x86_committed]) *)
  | Exit of int  (** leave the translation through exit-table entry [i] *)

(** Functional unit classes (paper §2: two ALUs, a memory unit, an
    FP/media unit, and a branch unit). *)
type unit_class = UAlu | UMem | UFpm | UBr | UFree

let unit_of = function
  | Nop | MovI _ | MovR _ | Alu _ | AluX _ | SetCond _ | ExtField _
  | InsField _ | ArmRange _ ->
      UAlu
  | MulX _ | DivX _ -> UFpm
  | Load _ | Store _ -> UMem
  | Br _ | BrCond _ | BrCmp _ | Exit _ -> UBr
  | Commit _ -> UFree (* commits are effectively free (paper §3.1) *)

(** Result latency in molecules (the scheduler must keep consumers at
    least this far behind; loads and multiplies have exposed latency on
    a statically scheduled machine). *)
let latency = function
  | Load _ -> 2
  | MulX _ -> 2
  | DivX _ -> 8
  | _ -> 1

(* ------------------------------------------------------------------ *)
(* Register use/def sets (for the scheduler and the debug interlock)   *)
(* ------------------------------------------------------------------ *)

let src_reg = function R r -> [ r ] | I _ -> []

let uses = function
  | Nop | MovI _ | Commit _ | Exit _ | Br _ -> []
  | MovR { rs; _ } -> [ rs ]
  | Alu { a; b; _ } -> a :: src_reg b
  | AluX { op; a; b; fr; _ } ->
      src_reg a @ src_reg b
      @ (if fr >= 0 && xop_reads_flags op b then [ fr ] else [])
  | MulX { a; b; _ } ->
      (* mul fully overwrites the status field: no flags read *)
      src_reg a @ src_reg b
  | DivX { hi; lo; divisor; _ } -> [ hi; lo ] @ src_reg divisor
  | ArmRange { base; _ } -> [ base ]
  | SetCond { fr; _ } -> [ fr ]
  | ExtField { rs; _ } -> [ rs ]
  | InsField { rd; rs; _ } -> [ rd; rs ]
  | Load { base; _ } -> [ base ]
  | Store { rs; base; _ } -> src_reg rs @ [ base ]
  | BrCond { fr; _ } -> [ fr ]
  | BrCmp { a; b; _ } -> a :: src_reg b

let defs = function
  | Nop | Commit _ | Exit _ | Br _ | BrCond _ | BrCmp _ | Store _
  | ArmRange _ ->
      []
  | MovI { rd; _ } | MovR { rd; _ } | Alu { rd; _ } -> [ rd ]
  | AluX { rd; fw; op; _ } -> (
      let f = match op with XNot -> [] | _ when fw < 0 -> [] | _ -> [ fw ] in
      match rd with Some r -> r :: f | None -> f)
  | MulX { rd_lo; rd_hi; fw; _ } ->
      (rd_lo :: (if fw >= 0 then [ fw ] else []))
      @ (match rd_hi with Some r -> [ r ] | None -> [])
  | DivX { rd_q; rd_r; _ } -> [ rd_q; rd_r ]
  | SetCond { rd; _ } | ExtField { rd; _ } | InsField { rd; _ } -> [ rd ]
  | Load { rd; _ } -> [ rd ]

let is_branch = function
  | Br _ | BrCond _ | BrCmp _ | Exit _ -> true
  | _ -> false

let is_mem = function Load _ | Store _ -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Pretty printing (debug dumps)                                       *)
(* ------------------------------------------------------------------ *)

let pp_src fmt = function
  | R r -> Fmt.pf fmt "r%d" r
  | I i -> Fmt.pf fmt "#0x%x" i

let host_op_name = function
  | HAdd -> "add"
  | HSub -> "sub"
  | HAnd -> "and"
  | HOr -> "or"
  | HXor -> "xor"
  | HShl -> "shl"
  | HShr -> "shr"
  | HSar -> "sar"
  | HMul -> "mul"

let xop_name = function
  | XAdd -> "xadd"
  | XAdc -> "xadc"
  | XSub -> "xsub"
  | XSbb -> "xsbb"
  | XAnd -> "xand"
  | XOr -> "xor"
  | XXor -> "xxor"
  | XShl -> "xshl"
  | XShr -> "xshr"
  | XSar -> "xsar"
  | XRol -> "xrol"
  | XRor -> "xror"
  | XInc -> "xinc"
  | XDec -> "xdec"
  | XNeg -> "xneg"
  | XNot -> "xnot"
  | XTest -> "xtest"
  | XCmp -> "xcmp"

let pp fmt = function
  | Nop -> Fmt.string fmt "nop"
  | MovI { rd; imm } -> Fmt.pf fmt "r%d = #0x%x" rd imm
  | MovR { rd; rs } -> Fmt.pf fmt "r%d = r%d" rd rs
  | Alu { op; rd; a; b } ->
      Fmt.pf fmt "r%d = %s r%d, %a" rd (host_op_name op) a pp_src b
  | AluX { op; size; rd; a; b; fr; fw } ->
      Fmt.pf fmt "%s%s.%s %a, %a (fr=r%d fw=r%d)"
        (match rd with Some r -> Fmt.str "r%d = " r | None -> "")
        (xop_name op)
        (match size with X86.Flags.S8 -> "b" | S32 -> "d")
        pp_src a pp_src b fr fw
  | MulX { signed; rd_lo; rd_hi; a; b; _ } ->
      Fmt.pf fmt "r%d%s = %s %a, %a" rd_lo
        (match rd_hi with Some r -> Fmt.str ":r%d" r | None -> "")
        (if signed then "imul" else "mul")
        pp_src a pp_src b
  | DivX { signed; rd_q; rd_r; hi; lo; divisor; _ } ->
      Fmt.pf fmt "r%d,r%d = %s r%d:r%d / %a" rd_q rd_r
        (if signed then "idiv" else "div")
        hi lo pp_src divisor
  | SetCond { rd; cond; fr } ->
      Fmt.pf fmt "r%d = set%s(r%d)" rd (X86.Cond.name cond) fr
  | ExtField { rd; rs; shift; width; sign } ->
      Fmt.pf fmt "r%d = ext%s r%d[%d+:%d]" rd (if sign then "s" else "u") rs
        shift width
  | InsField { rd; rs; shift; width } ->
      Fmt.pf fmt "r%d[%d+:%d] = r%d" rd shift width rs
  | Load { rd; base; disp; size; spec; protect; check } ->
      Fmt.pf fmt "r%d = ld%d [r%d%+d]%s%s%s" rd size base disp
        (if spec then " spec" else "")
        (match protect with Some s -> Fmt.str " prot%d" s | None -> "")
        (if check <> 0 then Fmt.str " chk%x" check else "")
  | Store { rs; base; disp; size; spec; check } ->
      Fmt.pf fmt "st%d [r%d%+d] = %a%s%s" size base disp pp_src rs
        (if spec then " spec" else "")
        (if check <> 0 then Fmt.str " chk%x" check else "")
  | Br { target } -> Fmt.pf fmt "br @%d" target
  | BrCond { cond; fr; target } ->
      Fmt.pf fmt "br%s(r%d) @%d" (X86.Cond.name cond) fr target
  | BrCmp { cmp; a; b; target } ->
      let n =
        match cmp with
        | Ceq -> "eq"
        | Cne -> "ne"
        | Cult -> "ult"
        | Cule -> "ule"
        | Cslt -> "slt"
        | Csle -> "sle"
      in
      Fmt.pf fmt "br.%s r%d, %a @%d" n a pp_src b target
  | ArmRange { slot; base; disp; len } ->
      Fmt.pf fmt "arm%d [r%d%+d, +%d)" slot base disp len
  | Commit n -> Fmt.pf fmt "commit(%d)" n
  | Exit i -> Fmt.pf fmt "exit #%d" i
