(** Host performance counters.

    Molecule counts are the simulator's primary metric, matching the
    paper's own simulator ("accurate dynamic molecule counts but not
    cycle accuracy"). *)

type t = {
  mutable molecules : int;
  mutable atoms : int;
  mutable nops : int;
  mutable loads : int;
  mutable stores : int;
  mutable commits : int;
  mutable x86_committed : int;
      (** x86 instructions retired by translation commits *)
  mutable rollbacks : int;
  mutable exits_taken : int;
  mutable x86_fault_atoms : int;
  mutable alias_faults : int;
  mutable mmio_spec_faults : int;
  mutable smc_faults : int;
  mutable sbuf_overflows : int;
  mutable interrupts_taken : int;
}

let create () =
  {
    molecules = 0;
    atoms = 0;
    nops = 0;
    loads = 0;
    stores = 0;
    commits = 0;
    x86_committed = 0;
    rollbacks = 0;
    exits_taken = 0;
    x86_fault_atoms = 0;
    alias_faults = 0;
    mmio_spec_faults = 0;
    smc_faults = 0;
    sbuf_overflows = 0;
    interrupts_taken = 0;
  }

let reset t =
  t.molecules <- 0;
  t.atoms <- 0;
  t.nops <- 0;
  t.loads <- 0;
  t.stores <- 0;
  t.commits <- 0;
  t.x86_committed <- 0;
  t.rollbacks <- 0;
  t.exits_taken <- 0;
  t.x86_fault_atoms <- 0;
  t.alias_faults <- 0;
  t.mmio_spec_faults <- 0;
  t.smc_faults <- 0;
  t.sbuf_overflows <- 0;
  t.interrupts_taken <- 0

let pp fmt t =
  Fmt.pf fmt
    "molecules=%d atoms=%d nops=%d loads=%d stores=%d commits=%d \
     rollbacks=%d exits=%d faults[x86=%d alias=%d mmio=%d smc=%d sbuf=%d] \
     irq=%d"
    t.molecules t.atoms t.nops t.loads t.stores t.commits t.rollbacks
    t.exits_taken t.x86_fault_atoms t.alias_faults t.mmio_spec_faults
    t.smc_faults t.sbuf_overflows t.interrupts_taken
