(** Molecules: VLIW instruction words bundling 1–4 atoms.

    The TM5800 issues 2- or 4-atom molecules to a subset of five
    functional units: two ALUs, one memory unit, one FP/media unit and
    one branch unit (paper §2).  We validate those issue constraints
    structurally; the execution engine additionally enforces them in
    debug mode.  Atoms in one molecule execute in parallel: all reads
    observe pre-molecule state. *)

type t = Atom.t array

let max_slots = 4

let nop : t = [| Atom.Nop |]

(** Check issue constraints; returns an error description on violation. *)
let check (m : t) =
  if Array.length m = 0 then Error "empty molecule"
  else if Array.length m > max_slots then Error "too many atoms"
  else begin
    let alu = ref 0 and mem = ref 0 and fpm = ref 0 and br = ref 0 in
    Array.iter
      (fun a ->
        match Atom.unit_of a with
        | Atom.UAlu -> incr alu
        | UMem -> incr mem
        | UFpm -> incr fpm
        | UBr -> incr br
        | UFree -> ())
      m;
    if !alu > 2 then Error "more than 2 ALU atoms"
    else if !mem > 1 then Error "more than 1 memory atom"
    else if !fpm > 1 then Error "more than 1 FP/media atom"
    else if !br > 1 then Error "more than 1 branch atom"
    else begin
      (* No two atoms may define the same register. *)
      let defs = Array.to_list m |> List.concat_map Atom.defs in
      let sorted = List.sort compare defs in
      let rec dup = function
        | a :: b :: _ when a = b -> true
        | _ :: tl -> dup tl
        | [] -> false
      in
      if dup sorted then Error "two atoms define the same register"
      else Ok ()
    end
  end

let pp fmt (m : t) =
  Fmt.pf fmt "{ %a }" Fmt.(array ~sep:(any " | ") Atom.pp) m
