(** A block of scheduled native code: molecules plus an exit table.

    Branch targets inside [molecules] are molecule indices.  Exits
    describe how control leaves the block: the next x86 EIP (constant,
    or read from a register for indirect flow), how many x86
    instructions retired on the path to this exit, and the mutable
    chaining state the CMS dispatcher maintains (paper §2: exits start
    on the "no chain" path and are patched to branch directly to the
    next translation once it exists). *)

type target = Const of int | FromReg of Atom.reg

type chain_state =
  | Unchained  (** not yet linked; dispatcher does a lookup *)
  | Chained of int  (** linked to translation id *)
  | NoChain  (** never chain (e.g. indirect branches, interp exits) *)

type exit_kind =
  | Enext  (** continue at the target EIP *)
  | Einterp_one
      (** interpret exactly one x86 instruction at the target EIP, then
          continue (zero-instruction translations, interp-only insns) *)
  | Eselfcheck_fail
      (** the embedded self-check found the x86 code bytes changed *)

type exit = {
  target : target;
  kind : exit_kind;
  x86_retired : int;  (** x86 instructions completed on this path *)
  mutable chain : chain_state;
}

type t = { molecules : Molecule.t array; exits : exit array }

let exit_count t = Array.length t.exits
let molecule_count t = Array.length t.molecules

(** Total atoms, the code-size metric for the self-checking experiment
    (§3.6.3 reports code-size growth in percent). *)
let atom_count t =
  Array.fold_left (fun acc m -> acc + Array.length m) 0 t.molecules

(** Validate the whole block: molecule issue constraints and branch
    targets in range. *)
let validate t =
  let n = Array.length t.molecules in
  let nx = Array.length t.exits in
  let problems = ref [] in
  Array.iteri
    (fun i m ->
      (match Molecule.check m with
      | Ok () -> ()
      | Error e -> problems := Fmt.str "molecule %d: %s" i e :: !problems);
      Array.iter
        (fun a ->
          match a with
          | Atom.Br { target } | BrCond { target; _ } | BrCmp { target; _ } ->
              if target < 0 || target >= n then
                problems := Fmt.str "molecule %d: branch out of range" i :: !problems
          | Atom.Exit e ->
              if e < 0 || e >= nx then
                problems := Fmt.str "molecule %d: exit out of range" i :: !problems
          | _ -> ())
        m)
    t.molecules;
  match !problems with [] -> Ok () | ps -> Error (String.concat "; " ps)

let pp fmt t =
  Array.iteri (fun i m -> Fmt.pf fmt "@[%3d: %a@]@." i Molecule.pp m) t.molecules;
  Array.iteri
    (fun i e ->
      Fmt.pf fmt "exit %d: %s -> %s (%d x86)@." i
        (match e.kind with
        | Enext -> "next"
        | Einterp_one -> "interp1"
        | Eselfcheck_fail -> "selfcheck-fail")
        (match e.target with
        | Const c -> Fmt.str "0x%x" c
        | FromReg r -> Fmt.str "r%d" r)
        e.x86_retired)
    t.exits
