(** Register-use convention between CMS and the VLIW hardware.

    The Crusoe assigns the architectural x86 registers to dedicated
    native registers, with an ample set left for CMS (paper §2).  All
    registers holding x86 state are shadowed (working + shadow copy);
    temporaries above [shadow_count] are not, because they are dead at
    every commit boundary by construction. *)

let num_regs = 64

(* r0..r7: the eight x86 GPRs, same numbering as [X86.Regs]. *)
let gpr (r : X86.Regs.t) : int = r

(* r8: x86 EIP (committed value = address of next x86 instruction). *)
let eip = 8

(* r9: x86 EFLAGS. *)
let eflags = 9

(* r10..r11: reserved shadowed scratch (available to future features). *)
let shadow_count = 12

(* r12..r63: CMS temporaries, not shadowed. *)
let tmp_base = 12
let tmp_count = num_regs - tmp_base
