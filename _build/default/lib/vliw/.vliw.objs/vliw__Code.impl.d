lib/vliw/code.ml: Array Atom Fmt Molecule String
