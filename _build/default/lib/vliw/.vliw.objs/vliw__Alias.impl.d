lib/vliw/alias.ml: Array
