lib/vliw/storebuf.ml: List
