lib/vliw/molecule.ml: Array Atom Fmt List
