lib/vliw/perf.ml: Fmt
