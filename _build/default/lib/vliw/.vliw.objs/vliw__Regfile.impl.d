lib/vliw/regfile.ml: Abi Array
