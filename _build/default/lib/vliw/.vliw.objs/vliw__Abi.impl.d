lib/vliw/abi.ml: X86
