lib/vliw/nexn.ml: Fmt Machine X86
