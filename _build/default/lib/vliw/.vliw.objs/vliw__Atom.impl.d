lib/vliw/atom.ml: Fmt X86
