lib/vliw/exec.ml: Abi Alias Array Atom Code Fmt List Machine Molecule Nexn Perf Regfile Storebuf Sys X86
